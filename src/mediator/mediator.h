#ifndef FUSION_MEDIATOR_MEDIATOR_H_
#define FUSION_MEDIATOR_MEDIATOR_H_

#include <memory>
#include <string>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "optimizer/postopt.h"
#include "query/fusion_query.h"
#include "source/catalog.h"
#include "stats/calibration.h"

namespace fusion {

/// Which optimization algorithm the mediator runs for a query.
enum class OptimizerStrategy {
  kFilter,       // FILTER: push every condition to every source
  kSj,           // best semijoin plan (exhaustive orderings)
  kSja,          // best semijoin-adaptive plan (exhaustive orderings)
  kSjaPlus,      // SJA + Section-4 postoptimization (difference, loading)
  kGreedySja,    // greedy ordering + adaptive decisions (no m! search)
  kGreedySjaPlus // greedy SJA + postoptimization
};

const char* OptimizerStrategyName(OptimizerStrategy s);

/// Where the mediator's cost model parameters come from.
enum class StatisticsMode {
  /// Perfect information read from the simulated sources (controlled
  /// experiments; unrealistic in deployment).
  kOracle,
  /// Exact per-source statistics but independence-based set estimation —
  /// the "good statistics" configuration.
  kOracleParametric,
  /// Sampling-based calibration through the public wrapper interface only
  /// (the realistic configuration; costs probe traffic).
  kCalibrated,
};

const char* StatisticsModeName(StatisticsMode m);

struct MediatorOptions {
  OptimizerStrategy strategy = OptimizerStrategy::kSjaPlus;
  StatisticsMode statistics = StatisticsMode::kOracleParametric;
  CalibrationOptions calibration;
  PostOptOptions postopt;
  /// Runtime execution options (lazy short-circuiting, retries, parallelism).
  ExecOptions execution;
};

/// Everything the mediator reports for one answered query.
struct QueryAnswer {
  ItemSet items;
  OptimizedPlan optimized;
  ExecutionReport execution;
  /// Probe traffic spent on calibration (zero unless kCalibrated).
  double calibration_cost = 0.0;
};

/// The central coordination site of the paper (Section 2): owns the source
/// catalog, builds cost models from statistics, optimizes fusion queries and
/// executes the chosen plans, and supports the two-phase protocol's second
/// phase (full-record retrieval for matched items).
class Mediator {
 public:
  explicit Mediator(SourceCatalog catalog) : catalog_(std::move(catalog)) {}

  Mediator(Mediator&&) = default;
  Mediator& operator=(Mediator&&) = default;

  const SourceCatalog& catalog() const { return catalog_; }

  /// Optimizes and executes `query` end to end.
  Result<QueryAnswer> Answer(const FusionQuery& query,
                             const MediatorOptions& options = {});

  /// Parses the paper-style SQL text and answers it.
  Result<QueryAnswer> AnswerSql(const std::string& sql,
                                const MediatorOptions& options = {});

  /// Builds the planning cost model for `query` per `options`; exposed for
  /// experiments that want to run optimizers directly. Calibration probe
  /// costs are metered into `probe_ledger` when non-null.
  Result<std::unique_ptr<CostModel>> BuildCostModel(
      const FusionQuery& query, const MediatorOptions& options,
      CostLedger* probe_ledger);

  /// Runs the configured optimizer without executing.
  Result<OptimizedPlan> Optimize(const FusionQuery& query,
                                 const MediatorOptions& options = {});

  /// Second phase of two-phase processing: fetches the full records of
  /// `items` from every source and unions them (broadcast — complete but
  /// pays n round trips). Costs are metered into `ledger` when non-null.
  Result<Relation> FetchRecords(const FusionQuery& query, const ItemSet& items,
                                CostLedger* ledger);

  /// Witness-based second phase: uses the per-source item observations that
  /// phase-1 execution gathered for free to fetch each answered item from
  /// one covering source only (greedy set cover; see mediator/fetch_planner).
  /// Guarantees at least one record per answer item — cheaper than the
  /// broadcast, but not complete across sources (an item's records at
  /// sources that never returned it are not retrieved).
  Result<Relation> FetchRecordsFromWitnesses(const FusionQuery& query,
                                             const ExecutionReport& phase1,
                                             CostLedger* ledger);

 private:
  SourceCatalog catalog_;
};

/// Dispatches to the optimizer selected by `strategy`.
Result<OptimizedPlan> RunOptimizer(const CostModel& model,
                                   OptimizerStrategy strategy,
                                   const PostOptOptions& postopt);

}  // namespace fusion

#endif  // FUSION_MEDIATOR_MEDIATOR_H_
