#ifndef FUSION_MEDIATOR_CLIENT_H_
#define FUSION_MEDIATOR_CLIENT_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mediator/session.h"
#include "plan/plan.h"
#include "protocol/client_protocol.h"
#include "protocol/socket.h"

namespace fusion {

/// The one options struct of the client surface. Everything a caller can
/// configure — optimizer strategy, statistics mode, execution/fault policy,
/// cache and breaker bounds, planning priors — lives here, shared verbatim
/// with QuerySession so the embedded and served paths cannot drift.
using ClientOptions = QuerySession::Options;

/// Per-call overrides (strategy / statistics / cancellation / deadline).
using CallControls = QuerySession::CallControls;

/// What a client gets back for one query: the fused answer plus the metering
/// a caller acts on, identical in shape whether the query ran in-process or
/// through a fusionqd service. `detail` carries the full QueryAnswer
/// (optimized plan, execution report, ledger) in local mode and is null in
/// remote mode — the wire protocol ships the summary, not the plan.
struct ClientAnswer {
  ItemSet items;
  /// Total metered cost of this query's source traffic.
  double cost = 0.0;
  /// Source queries issued (ledger entries; cache hits issue none).
  size_t source_queries = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_containment_hits = 0;  // FUSIONQ/1 `cache-containment` field
  /// Merge-attribute items shipped to sources (semijoin bindings, probes)
  /// and received back (answer items) — the bytes-moved proxy the cost
  /// model charges per item, summed over this query's ledger.
  size_t items_sent = 0;
  size_t items_received = 0;
  /// Probe traffic charged by kCalibrated statistics (0 otherwise).
  double calibration_cost = 0.0;
  /// False iff the answer is sound but degraded (sources excluded).
  bool complete = true;
  /// The executed plan annotated with per-op cost / wall-clock / cache
  /// provenance, one line per op (see RenderExplainLines). Filled by
  /// QuerySqlExplained in both modes; empty otherwise.
  std::vector<std::string> explain_lines;
  std::shared_ptr<const QueryAnswer> detail;
};

/// Summarizes a full QueryAnswer into the client-facing ClientAnswer —
/// the one conversion both the embedded client and the serving layer use,
/// so local and served answers cannot diverge in shape.
ClientAnswer SummarizeAnswer(QueryAnswer answer);

/// Renders the executed plan with one annotation per op — metered cost,
/// wall-clock milliseconds, and cache provenance (hit / containment /
/// miss / none) — after a header naming the algorithm, plan class, and
/// estimated vs. measured cost. The same renderer backs `fusionq
/// --explain` (embedded) and the FUSIONQ/1 `explain` response lines
/// (served), so the two surfaces cannot drift.
std::vector<std::string> RenderExplainLines(const QueryAnswer& answer,
                                            const PlanPrintNames& names);

/// The client API of the system: one facade over the whole stack
/// (catalog → statistics → optimizer → executor → cache/breakers), built
/// once and then asked fusion queries. Two modes behind the same surface:
///
///  - **embedded**: the client owns a QuerySession over a local catalog;
///    every call runs the full mediator stack in-process;
///  - **connected**: the client speaks FUSIONQ/1 to a fusionqd service
///    (Builder::Connect), sharing that daemon's session — and therefore its
///    result cache, breakers, and learned statistics — with every other
///    connected client.
///
/// Construction goes through the Builder, aimed at a Target:
///
///   FUSION_ASSIGN_OR_RETURN(
///       Client client,
///       Client::Builder()
///           .To(Client::Target::EmbeddedFile("dmv.ini"))
///           .Build());
///   FUSION_ASSIGN_OR_RETURN(ClientAnswer a, client.QuerySql(sql));
///
/// A Client is move-only. An embedded client may be shared by concurrent
/// threads (QuerySession is thread-safe); a connected client serializes its
/// request/response exchanges internally.
class Client {
 public:
  /// Where a Client runs its queries — the one sum-type that replaced the
  /// Builder's three mutually-exclusive Catalog/CatalogFile/Connect
  /// setters. Embedded targets run the full mediator stack in-process;
  /// Remote targets speak FUSIONQ/1 to one endpoint or to several (a
  /// fusionrd router, or the shard list directly): the first reachable
  /// endpoint is dialed, and a lost connection fails over sticky-rotate —
  /// stay with the endpoint that last worked, rotate to the next on
  /// transport failure.
  class Target {
   public:
    /// Embedded mode over an already-built catalog.
    static Target Embedded(SourceCatalog catalog) {
      Target target;
      target.catalog_ = std::move(catalog);
      target.have_catalog_ = true;
      return target;
    }
    /// Embedded mode over an INI catalog config (see cli/catalog_config.h).
    static Target EmbeddedFile(std::string path) {
      Target target;
      target.catalog_file_ = std::move(path);
      return target;
    }
    /// Connected mode: one or more "host:port" endpoints, tried in order.
    static Target Remote(std::vector<std::string> endpoints) {
      Target target;
      target.endpoints_ = std::move(endpoints);
      return target;
    }
    static Target Remote(std::string endpoint) {
      return Remote(std::vector<std::string>{std::move(endpoint)});
    }

   private:
    friend class Client;
    Target() = default;

    SourceCatalog catalog_;
    bool have_catalog_ = false;
    std::string catalog_file_;
    std::vector<std::string> endpoints_;
  };

  class Builder {
   public:
    /// Aims the client at `target` (exactly one target per Build).
    Builder& To(Target target) {
      target_ = std::move(target);
      ++targets_set_;
      return *this;
    }

    /// Deprecated shim for To(Target::Embedded(...)).
    Builder& Catalog(SourceCatalog catalog) {
      return To(Target::Embedded(std::move(catalog)));
    }
    /// Deprecated shim for To(Target::EmbeddedFile(...)).
    Builder& CatalogFile(const std::string& path) {
      return To(Target::EmbeddedFile(path));
    }
    /// Deprecated shim for To(Target::Remote(...)).
    Builder& Connect(const std::string& endpoint) {
      return To(Target::Remote(endpoint));
    }

    /// Connected mode's fair-scheduling identity (defaults to "anon"; every
    /// distinct id gets its own round-robin turn at the service).
    Builder& ClientId(const std::string& id) {
      client_id_ = id;
      return *this;
    }
    /// Connected mode's transparent-reconnect policy: how many dial/exchange
    /// attempts a lost connection gets, and the capped exponential backoff
    /// between them (RetryPolicy::BackoffSeconds — the same schedule shape
    /// PR 3's source-call retries use). max_attempts <= 1 disables
    /// reconnection: the first transport error surfaces to the caller.
    Builder& Reconnect(const RetryPolicy& policy) {
      reconnect_ = policy;
      return *this;
    }
    /// Replaces the whole options struct (then refine with the setters).
    Builder& Options(const ClientOptions& options) {
      options_ = options;
      return *this;
    }
    Builder& Strategy(OptimizerStrategy strategy) {
      options_.strategy = strategy;
      return *this;
    }
    /// Fixed statistics mode; `std::nullopt` = session-learned (default).
    Builder& Statistics(std::optional<StatisticsMode> mode) {
      options_.statistics = mode;
      return *this;
    }
    Builder& Execution(const ExecOptions& execution) {
      options_.execution = execution;
      return *this;
    }
    /// Attach/detach the cross-query result cache (embedded mode).
    Builder& UseCache(bool use_cache) {
      options_.use_cache = use_cache;
      return *this;
    }

    /// Validates the configuration and builds the client. Embedded mode
    /// requires a catalog; connected mode dials the target's endpoints in
    /// order (rotating on retryable failure) and performs the HELLO
    /// handshake on the first that answers.
    Result<Client> Build();

   private:
    Target target_;
    int targets_set_ = 0;
    std::string client_id_ = "anon";
    ClientOptions options_;
    RetryPolicy reconnect_ = DefaultReconnectPolicy();
  };

  /// The default connected-mode reconnect schedule: 6 attempts, 10 ms
  /// doubling to a 250 ms cap — a dropped connection is usually back within
  /// a few hundred milliseconds, and a dead daemon fails in under a second.
  static RetryPolicy DefaultReconnectPolicy();

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Answers one fusion query (blocking). Thread-safe.
  Result<ClientAnswer> Query(const FusionQuery& query) {
    return Query(query, CallControls{});
  }
  Result<ClientAnswer> Query(const FusionQuery& query,
                             const CallControls& controls);
  Result<ClientAnswer> QuerySql(const std::string& sql) {
    return QuerySql(sql, CallControls{});
  }
  Result<ClientAnswer> QuerySql(const std::string& sql,
                                const CallControls& controls);

  /// As QuerySql, with the answer's `explain_lines` filled: the executed
  /// plan annotated per op. Embedded mode renders locally; connected mode
  /// sets `explain yes` on the SUBMIT (kUnsupported against a server that
  /// never advertised the `explain` feature).
  Result<ClientAnswer> QuerySqlExplained(const std::string& sql);

  /// The live STATS text exposition (obs/exposition.h). Connected mode
  /// round-trips the FUSIONQ/1 STATS verb (kUnsupported against a server
  /// that never advertised `stats`); embedded mode renders this process's
  /// metrics directly (no tenant table — tenants are a serving concept).
  Result<std::string> Stats();

  /// Drops every cached call result for the named source — the cache-
  /// coherence entry point a feed uses when a source changed upstream.
  /// Embedded mode invalidates the local session directly; connected mode
  /// sends the FUSIONQ/1 INVALIDATE verb (kUnsupported against a server
  /// that never advertised `sharding`), where a router fans it out to every
  /// shard. `version` stamps make replays idempotent (see the protocol
  /// docs); 0 = unconditional. Returns "applied" or "stale".
  Result<std::string> InvalidateSource(const std::string& source,
                                       uint64_t version = 0);

  /// True when this client speaks to a fusionqd instead of running locally.
  bool connected() const { return remote_ != nullptr; }
  /// Times this client re-dialed and re-handshook after losing its
  /// connection (0 in embedded mode and on a healthy network).
  size_t reconnects() const;
  /// The server name from the HELLO handshake (empty in embedded mode).
  const std::string& server() const { return server_; }
  /// Feature tokens the server advertised on HELLO (empty in embedded mode
  /// and against pre-feature servers).
  const std::vector<std::string>& server_features() const {
    return server_features_;
  }

  /// The embedded session, for callers that need the full surface
  /// (ResetCache, InvalidateSource, health introspection). Null in
  /// connected mode.
  QuerySession* session() { return session_.get(); }
  const QuerySession* session() const { return session_.get(); }

 private:
  struct Remote {
    std::mutex mutex;  // one request/response exchange at a time
    MessageSocket socket;
    /// The target's endpoints, in preference order, with the sticky-rotate
    /// cursor: `active` stays wherever the last successful dial landed, and
    /// a redial tries from there, rotating on failure — so a healthy
    /// endpoint keeps its traffic and a dead one is skipped after one probe.
    std::vector<std::string> endpoints;
    size_t active = 0;
    std::string client_id;
    RetryPolicy reconnect;
    /// Negotiated from the HELLO response: optional fields (trace-id,
    /// request-id) and verbs (STATS, INVALIDATE, explain) are only sent to
    /// servers whose advertised set has the matching Feature.
    FeatureSet server_features;
    size_t reconnects = 0;  // guarded by mutex
  };

  Client() = default;

  Result<ClientAnswer> RemoteQuery(const std::string& sql,
                                   const CallControls& controls,
                                   bool explain = false);

  /// One request/response over the remote connection, with transparent
  /// redial + re-HELLO + resend on transport failure (capped exponential
  /// backoff per Remote::reconnect). A SUBMIT is only ever *resent* when
  /// the server negotiated idempotency and the request carries a
  /// request-id — otherwise a lost connection after the frame may have
  /// shipped surfaces as the transport error (at-most-once beats a
  /// possible double execution). Requires Remote::mutex held (callers hold
  /// it across building the request too, because reconnection renegotiates
  /// the feature flags the request depends on).
  Result<ClientResponse> RemoteExchangeLocked(const ClientRequest& request);

  /// Redials Remote::endpoint and re-runs the HELLO handshake, refreshing
  /// the negotiated feature set. Requires Remote::mutex held.
  Status RemoteReconnectLocked();

  /// Applies a HELLO response's advertised feature tokens to the
  /// connection's negotiated-capability flags (clearing stale ones first —
  /// a restarted daemon may speak fewer features than its predecessor).
  static void AdoptServerFeatures(Remote& remote,
                                  const ClientResponse& response);

  std::unique_ptr<QuerySession> session_;  // embedded mode
  std::unique_ptr<Remote> remote_;         // connected mode
  std::string server_;
  std::vector<std::string> server_features_;
};

}  // namespace fusion

#endif  // FUSION_MEDIATOR_CLIENT_H_
