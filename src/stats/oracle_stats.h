#ifndef FUSION_STATS_ORACLE_STATS_H_
#define FUSION_STATS_ORACLE_STATS_H_

#include <vector>

#include "cost/parametric_cost_model.h"
#include "query/fusion_query.h"
#include "source/simulated_source.h"

namespace fusion {

/// Exact per-source statistics for `query`, read straight out of the
/// simulated sources (cardinalities and true per-condition distinct-item
/// counts). The resulting ParametricCostModel has perfect parameters but
/// still combines intermediate sizes under the independence assumption —
/// i.e. it is the "good statistics, standard estimator" configuration,
/// sitting between OracleCostModel (exact sets) and sampling calibration.
Result<SourceParams> OracleSourceParams(const SimulatedSource& source,
                                        const FusionQuery& query);

/// Builds the full model over a set of sources. `sources` must outlive
/// nothing (parameters are copied out).
Result<ParametricCostModel> OracleParametricModel(
    const std::vector<const SimulatedSource*>& sources,
    const FusionQuery& query);

/// Exact number of distinct merge values across all sources.
Result<double> ExactUniverseSize(
    const std::vector<const SimulatedSource*>& sources,
    const FusionQuery& query);

}  // namespace fusion

#endif  // FUSION_STATS_ORACLE_STATS_H_
