#include "stats/calibration.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace fusion {
namespace {

/// Least-squares fit of y = a + b x. Returns {a, b}; degenerate inputs fall
/// back to b = 0 (all cost attributed to the intercept).
std::pair<double, double> FitLine(const std::vector<double>& xs,
                                  const std::vector<double>& ys) {
  const size_t n = xs.size();
  if (n == 0) return {0.0, 0.0};
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return {sy / n, 0.0};
  const double b = (n * sxy - sx * sy) / denom;
  const double a = (sy - b * sx) / n;
  return {std::max(0.0, a), std::max(0.0, b)};
}

struct ProbeRange {
  int64_t lo;
  int64_t hi;
};

Condition RestrictToRange(const Condition& cond, const std::string& merge_attr,
                          const ProbeRange& range) {
  return Condition::And(cond,
                        Condition::Between(merge_attr, Value(range.lo),
                                           Value(range.hi)));
}

}  // namespace

Result<ParametricCostModel> CalibrateBySampling(
    SourceCatalog& catalog, const FusionQuery& query,
    const CalibrationOptions& options, CostLedger* probe_ledger) {
  if (catalog.empty()) return Status::InvalidArgument("empty catalog");
  if (options.merge_domain_hi < options.merge_domain_lo) {
    return Status::InvalidArgument("bad merge domain bounds");
  }
  if (options.num_range_probes < 1) {
    return Status::InvalidArgument("need at least one probe per source");
  }
  const double domain_span =
      static_cast<double>(options.merge_domain_hi - options.merge_domain_lo) +
      1.0;
  const double fraction =
      std::clamp(options.range_fraction, 1.0 / domain_span, 1.0);
  const int64_t range_width = std::max<int64_t>(
      1, static_cast<int64_t>(domain_span * fraction));

  Rng rng(options.seed);
  std::vector<ProbeRange> ranges;
  ranges.reserve(static_cast<size_t>(options.num_range_probes));
  for (int p = 0; p < options.num_range_probes; ++p) {
    const int64_t lo = rng.Uniform(
        options.merge_domain_lo,
        std::max(options.merge_domain_lo,
                 options.merge_domain_hi - range_width + 1));
    ranges.push_back({lo, lo + range_width - 1});
  }
  const double scale = domain_span / static_cast<double>(range_width);

  const size_t m = query.num_conditions();
  std::vector<SourceParams> all_params;
  all_params.reserve(catalog.size());

  // Probe answers for TRUE per source (used for capture-recapture).
  std::vector<ItemSet> true_probe_items(catalog.size());
  std::vector<double> est_cardinality(catalog.size(), 0.0);

  for (size_t j = 0; j < catalog.size(); ++j) {
    SourceWrapper& src = catalog.source(j);
    SourceParams params;
    params.capabilities = src.capabilities();
    params.result_size.assign(m, 0.0);

    // Cost/result observations across all select probes for this source.
    std::vector<double> obs_result;
    std::vector<double> obs_cost;

    auto run_probe = [&](const Condition& cond) -> Result<ItemSet> {
      CostLedger local;
      FUSION_ASSIGN_OR_RETURN(
          ItemSet items, src.Select(cond, query.merge_attribute(), &local));
      obs_result.push_back(static_cast<double>(items.size()));
      obs_cost.push_back(local.total());
      if (probe_ledger != nullptr) {
        for (const Charge& c : local.charges()) probe_ledger->Add(c);
      }
      return items;
    };

    // Cardinality probes (TRUE over each range).
    double true_hits = 0;
    for (const ProbeRange& r : ranges) {
      FUSION_ASSIGN_OR_RETURN(
          ItemSet items,
          run_probe(RestrictToRange(Condition::True(),
                                    query.merge_attribute(), r)));
      true_hits += static_cast<double>(items.size());
      true_probe_items[j] = ItemSet::Union(true_probe_items[j], items);
    }
    est_cardinality[j] =
        true_hits / options.num_range_probes * scale;
    params.cardinality = est_cardinality[j];

    // Per-condition selectivity probes.
    for (size_t i = 0; i < m; ++i) {
      double hits = 0;
      for (const ProbeRange& r : ranges) {
        FUSION_ASSIGN_OR_RETURN(
            ItemSet items,
            run_probe(RestrictToRange(query.conditions()[i],
                                      query.merge_attribute(), r)));
        hits += static_cast<double>(items.size());
      }
      params.result_size[i] = hits / options.num_range_probes * scale;
    }

    // Fit cost = A + recv * result over the select probes.
    const auto [intercept, recv] = FitLine(obs_result, obs_cost);
    params.network.query_overhead = intercept;
    params.network.processing_per_tuple = 0.0;  // folded into the intercept
    params.network.cost_per_item_received = recv;
    params.network.record_width_factor = options.record_width_factor;

    // Fit the per-item send cost with a two-point native-semijoin probe.
    params.network.cost_per_item_sent = 0.0;
    if (params.capabilities.semijoin == SemijoinSupport::kNative &&
        !true_probe_items[j].empty()) {
      // Small set: one item. Larger set: all probe items.
      ItemSet small;
      small.Insert(*true_probe_items[j].begin());
      const ItemSet& big = true_probe_items[j];
      if (big.size() > small.size()) {
        CostLedger l1, l2;
        FUSION_ASSIGN_OR_RETURN(
            ItemSet r1, src.SemiJoin(Condition::True(),
                                     query.merge_attribute(), small, &l1));
        FUSION_ASSIGN_OR_RETURN(
            ItemSet r2, src.SemiJoin(Condition::True(),
                                     query.merge_attribute(), big, &l2));
        if (probe_ledger != nullptr) {
          for (const Charge& c : l1.charges()) probe_ledger->Add(c);
          for (const Charge& c : l2.charges()) probe_ledger->Add(c);
        }
        const double dx = static_cast<double>(big.size() - small.size());
        const double dcost = l2.total() - l1.total() -
                             recv * static_cast<double>(r2.size() - r1.size());
        params.network.cost_per_item_sent = std::max(0.0, dcost / dx);
      }
    }

    all_params.push_back(std::move(params));
  }

  // Universe estimate: Lincoln-Petersen over the two largest probe answers.
  double universe = 1.0;
  for (double c : est_cardinality) universe = std::max(universe, c);
  {
    size_t a = 0, b = 0;
    for (size_t j = 0; j < catalog.size(); ++j) {
      if (true_probe_items[j].size() > true_probe_items[a].size()) a = j;
    }
    b = (a == 0 && catalog.size() > 1) ? 1 : 0;
    for (size_t j = 0; j < catalog.size(); ++j) {
      if (j == a) continue;
      if (true_probe_items[j].size() > true_probe_items[b].size() || b == a) {
        b = j;
      }
    }
    if (a != b) {
      const ItemSet overlap =
          ItemSet::Intersect(true_probe_items[a], true_probe_items[b]);
      if (!overlap.empty()) {
        const double est_in_range =
            static_cast<double>(true_probe_items[a].size()) *
            static_cast<double>(true_probe_items[b].size()) /
            static_cast<double>(overlap.size());
        universe = std::max(
            universe, est_in_range / options.num_range_probes * scale);
      }
    }
  }

  return ParametricCostModel(std::move(all_params), universe);
}

}  // namespace fusion
