#include "stats/oracle_stats.h"

#include <algorithm>

namespace fusion {

Result<SourceParams> OracleSourceParams(const SimulatedSource& source,
                                        const FusionQuery& query) {
  SourceParams params;
  params.capabilities = source.capabilities();
  params.network = source.network();
  params.cardinality = static_cast<double>(source.relation().size());
  params.result_size.reserve(query.num_conditions());
  for (const Condition& cond : query.conditions()) {
    FUSION_ASSIGN_OR_RETURN(
        ItemSet items,
        source.relation().SelectItems(cond, query.merge_attribute()));
    params.result_size.push_back(static_cast<double>(items.size()));
  }
  return params;
}

Result<double> ExactUniverseSize(
    const std::vector<const SimulatedSource*>& sources,
    const FusionQuery& query) {
  ItemSet universe;
  for (const SimulatedSource* s : sources) {
    FUSION_ASSIGN_OR_RETURN(
        ItemSet all, s->relation().SelectItems(Condition::True(),
                                               query.merge_attribute()));
    universe = ItemSet::Union(universe, all);
  }
  return std::max<double>(1.0, static_cast<double>(universe.size()));
}

Result<ParametricCostModel> OracleParametricModel(
    const std::vector<const SimulatedSource*>& sources,
    const FusionQuery& query) {
  if (sources.empty()) {
    return Status::InvalidArgument("no sources");
  }
  std::vector<SourceParams> params;
  params.reserve(sources.size());
  for (const SimulatedSource* s : sources) {
    FUSION_ASSIGN_OR_RETURN(SourceParams p, OracleSourceParams(*s, query));
    params.push_back(std::move(p));
  }
  FUSION_ASSIGN_OR_RETURN(const double universe,
                          ExactUniverseSize(sources, query));
  return ParametricCostModel(std::move(params), universe);
}

}  // namespace fusion
