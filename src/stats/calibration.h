#ifndef FUSION_STATS_CALIBRATION_H_
#define FUSION_STATS_CALIBRATION_H_

#include <cstdint>

#include "cost/parametric_cost_model.h"
#include "query/fusion_query.h"
#include "source/catalog.h"
#include "source/cost_ledger.h"

namespace fusion {

/// Controls sampling-based calibration (in the spirit of Zhu & Larson's
/// query-sampling method [25] cited by the paper).
struct CalibrationOptions {
  /// Number of random merge-attribute subranges probed per source.
  int num_range_probes = 4;
  /// Fraction of the merge-attribute domain covered by each probe range.
  double range_fraction = 0.1;
  /// Inclusive numeric bounds of the merge-attribute domain. Calibration
  /// requires an int64-valued merge attribute (our synthetic workloads use
  /// integer entity ids; the DMV example would calibrate on a numeric key).
  int64_t merge_domain_lo = 0;
  int64_t merge_domain_hi = 0;
  uint64_t seed = 42;
  /// Assumed record-width factor for lq cost estimation (loading cannot be
  /// cheaply probed, so this stays a prior).
  double record_width_factor = 4.0;
};

/// Calibrates a ParametricCostModel for `query` by issuing probe queries
/// against live sources through their public wrapper interface only:
///
///  - per-condition result sizes: each condition is probed restricted to
///    random merge subranges (`c AND M BETWEEN lo AND hi`) and the observed
///    counts are scaled up by 1/range_fraction;
///  - source cardinality: `TRUE` probed over the same subranges (assumes at
///    most one tuple per entity per source, the common case in our
///    generators; multi-tuple sources bias cardinality low);
///  - per-query cost parameters: a least-squares fit of
///    `observed_cost = A + recv * result_size` over all select probes (A
///    absorbs query overhead + scan cost; the fitted model sets
///    processing_per_tuple = 0), and for natively semijoin-capable sources a
///    two-point probe of sjq at different semijoin-set sizes fits the
///    per-item send cost;
///  - universe size: Lincoln–Petersen capture–recapture across the two
///    largest sources' probe answers, falling back to the largest per-source
///    estimate when the overlap is empty.
///
/// All probe traffic is metered into `probe_ledger` (if non-null), so
/// experiments can report calibration overhead alongside plan costs.
Result<ParametricCostModel> CalibrateBySampling(SourceCatalog& catalog,
                                                const FusionQuery& query,
                                                const CalibrationOptions& options,
                                                CostLedger* probe_ledger);

}  // namespace fusion

#endif  // FUSION_STATS_CALIBRATION_H_
