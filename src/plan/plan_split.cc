#include "plan/plan_split.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace fusion {
namespace {

/// Every variable an op reads, in field order.
std::vector<int> OpInputs(const PlanOp& op) {
  std::vector<int> inputs;
  if (op.input >= 0) inputs.push_back(op.input);
  for (const int v : op.inputs) inputs.push_back(v);
  return inputs;
}

}  // namespace

Result<PlanSplit> SplitPlanBySource(const Plan& plan,
                                    const std::vector<size_t>& source_shard,
                                    size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("plan split needs at least one shard");
  }
  for (const size_t shard : source_shard) {
    if (shard >= num_shards) {
      return Status::InvalidArgument(
          "source_shard assigns shard " + std::to_string(shard) +
          " but there are only " + std::to_string(num_shards) + " shards");
    }
  }
  const std::vector<PlanOp>& ops = plan.ops();
  // defining_op[v]: the op whose target is v (SSA — exactly one).
  std::vector<int> defining_op(plan.vars().size(), -1);
  for (size_t k = 0; k < ops.size(); ++k) {
    defining_op[static_cast<size_t>(ops[k].target)] = static_cast<int>(k);
  }

  PlanSplit split;
  split.op_shard.resize(ops.size(), 0);
  for (size_t k = 0; k < ops.size(); ++k) {
    const PlanOp& op = ops[k];
    switch (op.kind) {
      case PlanOpKind::kSelect:
      case PlanOpKind::kSemiJoin:
      case PlanOpKind::kLoad: {
        if (op.source < 0 ||
            static_cast<size_t>(op.source) >= source_shard.size()) {
          return Status::InvalidArgument(
              "plan references source " + std::to_string(op.source) +
              " outside the source_shard assignment");
        }
        split.op_shard[k] = source_shard[static_cast<size_t>(op.source)];
        break;
      }
      case PlanOpKind::kLocalSelect: {
        // Pinned to wherever the relation was loaded: relations must never
        // cross shards (that would ship source-sized data).
        const int def = defining_op[static_cast<size_t>(op.input)];
        split.op_shard[k] = split.op_shard[static_cast<size_t>(def)];
        break;
      }
      case PlanOpKind::kUnion:
      case PlanOpKind::kIntersect:
      case PlanOpKind::kDifference: {
        // Majority-input placement (ties to the lowest shard): the set op
        // runs where most of its operands already live, so the fewest
        // item sets travel.
        std::map<size_t, size_t> votes;
        for (const int v : OpInputs(op)) {
          const int def = defining_op[static_cast<size_t>(v)];
          ++votes[split.op_shard[static_cast<size_t>(def)]];
        }
        size_t best_shard = 0;
        size_t best_votes = 0;
        for (const auto& [shard, count] : votes) {
          if (count > best_votes) {  // map order makes ties pick the lowest
            best_shard = shard;
            best_votes = count;
          }
        }
        split.op_shard[k] = best_shard;
        break;
      }
    }
  }

  // Fragments: maximal runs of consecutive same-shard ops. Executing them
  // in index order preserves SSA definition order trivially.
  for (size_t k = 0; k < ops.size(); ++k) {
    if (split.fragments.empty() ||
        split.fragments.back().shard != split.op_shard[k]) {
      PlanFragment fragment;
      fragment.shard = split.op_shard[k];
      split.fragments.push_back(std::move(fragment));
    }
    split.fragments.back().ops.push_back(k);
  }

  // Cut edges: each unique (var, consumer shard) pair whose producer sits
  // on a different shard — plus the split invariant: only item sets cross.
  std::set<std::pair<int, size_t>> seen;
  for (size_t k = 0; k < ops.size(); ++k) {
    for (const int v : OpInputs(ops[k])) {
      const int def = defining_op[static_cast<size_t>(v)];
      const size_t producer = split.op_shard[static_cast<size_t>(def)];
      const size_t consumer = split.op_shard[k];
      if (producer == consumer) continue;
      if (!seen.insert({v, consumer}).second) continue;
      if (plan.var(v).type != PlanVarType::kItems) {
        return Status::Internal(
            "plan split would ship relation variable '" + plan.var(v).name +
            "' across shards — placement bug, the local select pin must "
            "keep relations home");
      }
      PlanCutEdge edge;
      edge.var = v;
      edge.producer_shard = producer;
      edge.consumer_shard = consumer;
      split.cut_edges.push_back(edge);
    }
  }
  return split;
}

}  // namespace fusion
