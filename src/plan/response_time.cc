#include "plan/response_time.h"

#include <algorithm>

#include "common/str_util.h"
#include "plan/cost_estimator.h"

namespace fusion {

Result<ResponseTimeBreakdown> ComputeResponseTime(
    const Plan& plan, const std::vector<double>& per_op_cost) {
  if (per_op_cost.size() != plan.num_ops()) {
    return Status::InvalidArgument(
        StrFormat("per-op cost vector has %zu entries for %zu ops",
                  per_op_cost.size(), plan.num_ops()));
  }
  ResponseTimeBreakdown out;
  out.completion.assign(plan.num_ops(), 0.0);
  // ready[v] = completion time of the op defining variable v.
  std::vector<double> ready(plan.vars().size(), 0.0);
  // busy_until[j] = when source j finishes its last scheduled query.
  // Ops are scheduled in plan order per source (the mediator pipelines its
  // requests in program order), so a source serializes its own queries.
  std::vector<double> busy_until;

  auto source_slot = [&](int source) -> double& {
    if (static_cast<size_t>(source) >= busy_until.size()) {
      busy_until.resize(static_cast<size_t>(source) + 1, 0.0);
    }
    return busy_until[static_cast<size_t>(source)];
  };

  for (size_t k = 0; k < plan.ops().size(); ++k) {
    const PlanOp& op = plan.ops()[k];
    double start = 0.0;
    switch (op.kind) {
      case PlanOpKind::kSelect:
      case PlanOpKind::kLoad:
        start = source_slot(op.source);
        break;
      case PlanOpKind::kSemiJoin:
        start = std::max(ready[op.input], source_slot(op.source));
        break;
      case PlanOpKind::kLocalSelect:
        start = ready[op.input];
        break;
      case PlanOpKind::kUnion:
      case PlanOpKind::kIntersect:
      case PlanOpKind::kDifference:
        for (int v : op.inputs) start = std::max(start, ready[v]);
        break;
    }
    const double finish = start + per_op_cost[k];
    if (op.source >= 0) source_slot(op.source) = finish;
    ready[op.target] = finish;
    out.completion[k] = finish;
    out.total_work += per_op_cost[k];
    out.response_time = std::max(out.response_time, finish);
  }
  return out;
}

Result<ResponseTimeBreakdown> EstimateResponseTime(const Plan& plan,
                                                   const CostModel& model) {
  FUSION_ASSIGN_OR_RETURN(PlanCostBreakdown breakdown,
                          EstimatePlanCost(plan, model));
  return ComputeResponseTime(plan, breakdown.per_op);
}

}  // namespace fusion
