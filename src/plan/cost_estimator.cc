#include "plan/cost_estimator.h"

#include <cmath>

namespace fusion {

double EstimateLocalEvalSeconds(double rows, size_t atoms, bool columnar,
                                const LocalEvalParams& params) {
  if (rows <= 0.0) return 0.0;
  const double atom_count = static_cast<double>(atoms == 0 ? 1 : atoms);
  if (!columnar) {
    return rows * atom_count * params.row_path_seconds_per_row;
  }
  const double batches =
      std::ceil(rows / static_cast<double>(params.batch_rows));
  return batches * params.seconds_per_batch +
         rows * atom_count * params.seconds_per_row;
}

Result<PlanCostBreakdown> EstimatePlanCost(const Plan& plan,
                                           const CostModel& model) {
  FUSION_RETURN_IF_ERROR(
      plan.Validate(model.num_conditions(), model.num_sources()));
  PlanCostBreakdown out;
  out.per_op.reserve(plan.num_ops());

  std::vector<SetEstimate> var_est(plan.vars().size());
  // For relation vars: which source was loaded (enables local selects to use
  // the model's per-source result estimates).
  std::vector<int> var_source(plan.vars().size(), -1);

  for (const PlanOp& op : plan.ops()) {
    double op_cost = 0.0;
    switch (op.kind) {
      case PlanOpKind::kSelect:
        op_cost = model.SqCost(static_cast<size_t>(op.cond),
                               static_cast<size_t>(op.source));
        var_est[op.target] = model.SqResult(static_cast<size_t>(op.cond),
                                            static_cast<size_t>(op.source));
        break;
      case PlanOpKind::kSemiJoin:
        op_cost = model.SjqCost(static_cast<size_t>(op.cond),
                                static_cast<size_t>(op.source),
                                var_est[op.input]);
        var_est[op.target] = model.SjqResult(static_cast<size_t>(op.cond),
                                             static_cast<size_t>(op.source),
                                             var_est[op.input]);
        break;
      case PlanOpKind::kLoad:
        op_cost = model.LqCost(static_cast<size_t>(op.source));
        var_source[op.target] = op.source;
        break;
      case PlanOpKind::kLocalSelect: {
        // Free: the relation is already at the mediator. The result is the
        // same set sq would have returned from that source.
        const int src = var_source[op.input];
        if (src < 0) {
          return Status::InvalidArgument(
              "local select over a var that is not a loaded relation");
        }
        var_est[op.target] = model.SqResult(static_cast<size_t>(op.cond),
                                            static_cast<size_t>(src));
        // Informational only (never in `total`): the mediator-side CPU time
        // of this select under the batch evaluator. The model abstracts
        // conditions by index, so one atom and the universe size stand in
        // for atom count and the loaded relation's cardinality.
        out.local_eval_seconds += EstimateLocalEvalSeconds(
            model.universe_size(), /*atoms=*/1, /*columnar=*/true);
        break;
      }
      case PlanOpKind::kUnion: {
        SetEstimate acc = var_est[op.inputs[0]];
        for (size_t i = 1; i < op.inputs.size(); ++i) {
          acc = UnionEstimate(acc, var_est[op.inputs[i]],
                              model.universe_size());
        }
        var_est[op.target] = std::move(acc);
        break;
      }
      case PlanOpKind::kIntersect: {
        SetEstimate acc = var_est[op.inputs[0]];
        for (size_t i = 1; i < op.inputs.size(); ++i) {
          acc = IntersectEstimate(acc, var_est[op.inputs[i]],
                                  model.universe_size());
        }
        var_est[op.target] = std::move(acc);
        break;
      }
      case PlanOpKind::kDifference:
        var_est[op.target] =
            DifferenceEstimate(var_est[op.inputs[0]], var_est[op.inputs[1]],
                               model.universe_size());
        break;
    }
    out.per_op.push_back(op_cost);
    out.total += op_cost;
  }
  out.result = var_est[plan.result()];
  return out;
}

bool QueryCacheView::AnySet() const {
  for (const std::vector<char>& row : sq_answerable) {
    for (const char v : row) {
      if (v != 0) return true;
    }
  }
  for (const std::vector<char>& row : sjq_answerable) {
    for (const char v : row) {
      if (v != 0) return true;
    }
  }
  for (const char v : lq_cached) {
    if (v != 0) return true;
  }
  return false;
}

Result<PlanCostBreakdown> EstimatePlanCost(const Plan& plan,
                                           const CostModel& model,
                                           const QueryCacheView& view) {
  const CacheAwareCostModel cached(model, view);
  return EstimatePlanCost(plan, cached);
}

}  // namespace fusion
