#ifndef FUSION_PLAN_CLASSIFIER_H_
#define FUSION_PLAN_CLASSIFIER_H_

#include "plan/plan.h"

namespace fusion {

/// The plan taxonomy of Section 2.5 (most restrictive class reported):
///  - kFilter: selection queries and local ∪/∩ only;
///  - kSemijoin: each condition evaluated uniformly — all-sq or all-sjq
///    across sources;
///  - kSemijoinAdaptive: per-source sq/sjq choice within a condition;
///  - kNonSimple: uses lq, local selection, or set difference
///    (the SJA+ postoptimization vocabulary of Section 4).
enum class PlanClass {
  kFilter,
  kSemijoin,
  kSemijoinAdaptive,
  kNonSimple,
};

const char* PlanClassName(PlanClass c);

/// Classifies by inspecting the op vocabulary and the per-condition mix of
/// sq vs sjq ops.
PlanClass ClassifyPlan(const Plan& plan);

}  // namespace fusion

#endif  // FUSION_PLAN_CLASSIFIER_H_
