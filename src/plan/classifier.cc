#include "plan/classifier.h"

#include <map>

namespace fusion {

const char* PlanClassName(PlanClass c) {
  switch (c) {
    case PlanClass::kFilter:
      return "filter";
    case PlanClass::kSemijoin:
      return "semijoin";
    case PlanClass::kSemijoinAdaptive:
      return "semijoin-adaptive";
    case PlanClass::kNonSimple:
      return "non-simple";
  }
  return "?";
}

PlanClass ClassifyPlan(const Plan& plan) {
  bool any_semijoin = false;
  // Per condition: how many sq vs sjq ops evaluate it.
  std::map<int, std::pair<int, int>> per_cond;  // cond -> (sq, sjq)
  for (const PlanOp& op : plan.ops()) {
    switch (op.kind) {
      case PlanOpKind::kLoad:
      case PlanOpKind::kLocalSelect:
      case PlanOpKind::kDifference:
        return PlanClass::kNonSimple;
      case PlanOpKind::kSelect:
        per_cond[op.cond].first++;
        break;
      case PlanOpKind::kSemiJoin:
        per_cond[op.cond].second++;
        any_semijoin = true;
        break;
      case PlanOpKind::kUnion:
      case PlanOpKind::kIntersect:
        break;
    }
  }
  if (!any_semijoin) return PlanClass::kFilter;
  for (const auto& [cond, counts] : per_cond) {
    if (counts.first > 0 && counts.second > 0) {
      return PlanClass::kSemijoinAdaptive;
    }
  }
  return PlanClass::kSemijoin;
}

}  // namespace fusion
