#include "plan/plan_serde.h"

#include <cstdlib>

#include "common/str_util.h"

namespace fusion {
namespace {

constexpr char kMagic[] = "FPLAN/1";

Result<int> ParseInt(const std::string& token) {
  char* end = nullptr;
  const long v = std::strtol(token.c_str(), &end, 10);
  if (token.empty() || end != token.c_str() + token.size()) {
    return Status::ParseError("bad integer in plan: " + token);
  }
  return static_cast<int>(v);
}

}  // namespace

std::string SerializePlan(const Plan& plan) {
  std::string out = std::string(kMagic) + "\n";
  for (size_t v = 0; v < plan.vars().size(); ++v) {
    const PlanVar& var = plan.vars()[v];
    out += StrFormat(
        "var %zu %s %s\n", v,
        var.type == PlanVarType::kItems ? "items" : "relation",
        var.name.c_str());
  }
  for (const PlanOp& op : plan.ops()) {
    switch (op.kind) {
      case PlanOpKind::kSelect:
        out += StrFormat("op select %d %d %d\n", op.target, op.cond,
                         op.source);
        break;
      case PlanOpKind::kSemiJoin:
        out += StrFormat("op semijoin %d %d %d %d\n", op.target, op.cond,
                         op.source, op.input);
        break;
      case PlanOpKind::kLoad:
        out += StrFormat("op load %d %d\n", op.target, op.source);
        break;
      case PlanOpKind::kLocalSelect:
        out += StrFormat("op local-select %d %d %d\n", op.target, op.cond,
                         op.input);
        break;
      case PlanOpKind::kUnion:
      case PlanOpKind::kIntersect: {
        out += StrFormat("op %s %d",
                         op.kind == PlanOpKind::kUnion ? "union" : "intersect",
                         op.target);
        for (int v : op.inputs) out += StrFormat(" %d", v);
        out += "\n";
        break;
      }
      case PlanOpKind::kDifference:
        out += StrFormat("op difference %d %d %d\n", op.target, op.inputs[0],
                         op.inputs[1]);
        break;
    }
  }
  out += StrFormat("result %d\nend\n", plan.result());
  return out;
}

Result<Plan> ParsePlan(const std::string& text) {
  const std::vector<std::string> lines = StrSplit(text, '\n');
  if (lines.empty() || lines[0] != kMagic) {
    return Status::ParseError("bad plan magic");
  }
  // First pass: variable names/types, in id order.
  std::vector<std::pair<std::string, PlanVarType>> vars;
  Plan plan;
  int result_var = -1;
  bool terminated = false;
  int next_var = 0;

  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    if (lines[i] == "end") {
      terminated = true;
      break;
    }
    std::vector<std::string> tokens = StrSplit(lines[i], ' ');
    if (tokens[0] == "var") {
      if (tokens.size() < 4) return Status::ParseError("bad var line");
      FUSION_ASSIGN_OR_RETURN(const int id, ParseInt(tokens[1]));
      if (id != static_cast<int>(vars.size())) {
        return Status::ParseError("var ids must be dense and ordered");
      }
      const PlanVarType type = tokens[2] == "relation"
                                   ? PlanVarType::kRelation
                                   : PlanVarType::kItems;
      // Names may contain spaces: rejoin the remainder.
      std::string name = tokens[3];
      for (size_t t = 4; t < tokens.size(); ++t) name += " " + tokens[t];
      vars.emplace_back(std::move(name), type);
      continue;
    }
    if (tokens[0] == "result") {
      if (tokens.size() != 2) return Status::ParseError("bad result line");
      FUSION_ASSIGN_OR_RETURN(result_var, ParseInt(tokens[1]));
      continue;
    }
    if (tokens[0] != "op" || tokens.size() < 3) {
      return Status::ParseError("bad plan line: " + lines[i]);
    }
    const std::string& kind = tokens[1];
    FUSION_ASSIGN_OR_RETURN(const int target, ParseInt(tokens[2]));
    if (target != next_var) {
      return Status::ParseError(
          "op targets must follow variable-allocation order");
    }
    if (static_cast<size_t>(target) >= vars.size()) {
      return Status::ParseError("op target without a var declaration");
    }
    const std::string& name = vars[static_cast<size_t>(target)].first;
    auto arg = [&](size_t idx) -> Result<int> {
      if (idx >= tokens.size()) {
        return Status::ParseError("missing op operand: " + lines[i]);
      }
      return ParseInt(tokens[idx]);
    };
    if (kind == "select") {
      FUSION_ASSIGN_OR_RETURN(const int cond, arg(3));
      FUSION_ASSIGN_OR_RETURN(const int source, arg(4));
      plan.EmitSelect(cond, source, name);
    } else if (kind == "semijoin") {
      FUSION_ASSIGN_OR_RETURN(const int cond, arg(3));
      FUSION_ASSIGN_OR_RETURN(const int source, arg(4));
      FUSION_ASSIGN_OR_RETURN(const int input, arg(5));
      plan.EmitSemiJoin(cond, source, input, name);
    } else if (kind == "load") {
      FUSION_ASSIGN_OR_RETURN(const int source, arg(3));
      plan.EmitLoad(source, name);
    } else if (kind == "local-select") {
      FUSION_ASSIGN_OR_RETURN(const int cond, arg(3));
      FUSION_ASSIGN_OR_RETURN(const int input, arg(4));
      plan.EmitLocalSelect(cond, input, name);
    } else if (kind == "union" || kind == "intersect") {
      std::vector<int> inputs;
      for (size_t t = 3; t < tokens.size(); ++t) {
        FUSION_ASSIGN_OR_RETURN(const int v, ParseInt(tokens[t]));
        inputs.push_back(v);
      }
      if (kind == "union") {
        plan.EmitUnion(std::move(inputs), name);
      } else {
        plan.EmitIntersect(std::move(inputs), name);
      }
    } else if (kind == "difference") {
      FUSION_ASSIGN_OR_RETURN(const int lhs, arg(3));
      FUSION_ASSIGN_OR_RETURN(const int rhs, arg(4));
      plan.EmitDifference(lhs, rhs, name);
    } else {
      return Status::ParseError("unknown op kind: " + kind);
    }
    ++next_var;
  }
  if (!terminated) return Status::ParseError("plan missing 'end'");
  if (result_var < 0) return Status::ParseError("plan missing result");
  plan.SetResult(result_var);
  return plan;
}

}  // namespace fusion
