#ifndef FUSION_PLAN_RESPONSE_TIME_H_
#define FUSION_PLAN_RESPONSE_TIME_H_

#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"

namespace fusion {

/// Response-time analysis of a plan under a parallel execution model — the
/// future-work direction named in the paper's conclusion. The mediator can
/// issue independent source queries concurrently; an op can start once all
/// of its plan inputs are available, and local mediator operations are
/// instantaneous. The response time of a plan is therefore the weight of the
/// critical path through its dependency DAG, with each source query weighted
/// by its (estimated or metered) cost and local ops weighted zero.
///
/// Queries to the *same* source serialize (a source answers one query at a
/// time); queries to distinct sources run in parallel.
struct ResponseTimeBreakdown {
  /// Critical-path length: the parallel makespan.
  double response_time = 0.0;
  /// Σ op costs — the paper's total-work objective, for comparison.
  double total_work = 0.0;
  /// completion[k] = earliest finish time of op k.
  std::vector<double> completion;
};

/// Computes the makespan of `plan` given per-op costs (aligned with
/// plan.ops(), e.g. PlanCostBreakdown::per_op from the estimator, or metered
/// per-charge costs mapped back to ops). Validates array length only; the
/// plan is assumed structurally valid.
Result<ResponseTimeBreakdown> ComputeResponseTime(
    const Plan& plan, const std::vector<double>& per_op_cost);

/// Convenience: estimates per-op costs with `model` and computes the
/// response time in one step.
Result<ResponseTimeBreakdown> EstimateResponseTime(const Plan& plan,
                                                   const CostModel& model);

}  // namespace fusion

#endif  // FUSION_PLAN_RESPONSE_TIME_H_
