#ifndef FUSION_PLAN_PLAN_SERDE_H_
#define FUSION_PLAN_PLAN_SERDE_H_

#include <string>

#include "common/status.h"
#include "plan/plan.h"

namespace fusion {

/// Machine-readable plan serialization ("FPLAN/1"): a line-oriented format
/// that round-trips exactly, unlike the paper-notation pretty printer
/// (which is for humans). Lets tools persist optimizer decisions, diff
/// plans across versions, and replay a plan without re-optimizing:
///
///   FPLAN/1
///   var <id> <items|relation> <name>
///   op select <target> <cond> <source>
///   op semijoin <target> <cond> <source> <input>
///   op load <target> <source>
///   op local-select <target> <cond> <input>
///   op union <target> <input>...
///   op intersect <target> <input>...
///   op difference <target> <lhs> <rhs>
///   result <var>
///   end
std::string SerializePlan(const Plan& plan);

/// Parses the FPLAN/1 format; the result validates structurally (ids dense,
/// SSA order preserved). Display names survive the round trip.
Result<Plan> ParsePlan(const std::string& text);

}  // namespace fusion

#endif  // FUSION_PLAN_PLAN_SERDE_H_
