#ifndef FUSION_PLAN_PLAN_SPLIT_H_
#define FUSION_PLAN_PLAN_SPLIT_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "plan/plan.h"

namespace fusion {

/// One contiguous run of same-shard plan ops — the unit a shard executes.
/// Fragments partition the plan's op sequence in SSA order, so executing
/// fragments in index order (shipping cut variables between shards as they
/// are defined) reproduces the serial interpreter's evaluation exactly.
struct PlanFragment {
  size_t shard = 0;
  /// Op indices into the plan, consecutive and increasing.
  std::vector<size_t> ops;
};

/// A variable crossing a shard boundary: produced by an op placed on
/// `producer_shard`, consumed by at least one op on `consumer_shard`.
/// The split invariant guarantees every cut variable holds a
/// merge-attribute ItemSet (PlanVarType::kItems) — loaded relations never
/// cross the wire; only semijoin/union-sized item sets do, which is what
/// keeps the fleet's inter-shard traffic proportional to answer sizes,
/// not source sizes.
struct PlanCutEdge {
  int var = -1;
  size_t producer_shard = 0;
  size_t consumer_shard = 0;
};

/// The distributed decomposition of one optimized plan.
struct PlanSplit {
  /// Per-op executing shard (index-aligned with plan.ops()).
  std::vector<size_t> op_shard;
  /// Maximal same-shard runs, in plan order.
  std::vector<PlanFragment> fragments;
  /// Unique (var, consumer_shard) crossings, in discovery order.
  std::vector<PlanCutEdge> cut_edges;

  /// Merge-attribute item-set variables shipped between shards (the
  /// cross-shard traffic the fleet meters).
  size_t num_cut_vars() const { return cut_edges.size(); }
};

/// Partitions `plan` into per-shard fragments given each catalog source's
/// home shard (`source_shard[j]` = the shard nearest source j; every value
/// must be < num_shards, and the vector must cover every source the plan
/// references). Placement rules:
///
///  - source ops (sq / sjq / lq) run on their source's home shard — the
///    whole point: the call happens near the data, and only its
///    merge-attribute result travels;
///  - a local selection runs where its relation was loaded (pinning it
///    anywhere else would ship the relation — forbidden);
///  - set ops (∪ / ∩ / −) run where the majority of their inputs were
///    produced (ties to the lowest shard), minimizing shipped sets.
///
/// Validates the split invariant (every cut variable holds items, never a
/// relation) and fails kInternal if placement ever breaks it.
Result<PlanSplit> SplitPlanBySource(const Plan& plan,
                                    const std::vector<size_t>& source_shard,
                                    size_t num_shards);

}  // namespace fusion

#endif  // FUSION_PLAN_PLAN_SPLIT_H_
