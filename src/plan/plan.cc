#include "plan/plan.h"

#include "common/str_util.h"

namespace fusion {

const char* PlanOpKindName(PlanOpKind kind) {
  switch (kind) {
    case PlanOpKind::kSelect:
      return "sq";
    case PlanOpKind::kSemiJoin:
      return "sjq";
    case PlanOpKind::kLoad:
      return "lq";
    case PlanOpKind::kUnion:
      return "union";
    case PlanOpKind::kIntersect:
      return "intersect";
    case PlanOpKind::kDifference:
      return "difference";
    case PlanOpKind::kLocalSelect:
      return "local-sq";
  }
  return "?";
}

int Plan::NewVar(std::string name, PlanVarType type) {
  if (name.empty()) {
    name = StrFormat("V%zu", vars_.size());
  }
  vars_.push_back({std::move(name), type});
  return static_cast<int>(vars_.size()) - 1;
}

int Plan::EmitSelect(int cond, int source, std::string name) {
  PlanOp op;
  op.kind = PlanOpKind::kSelect;
  op.cond = cond;
  op.source = source;
  op.target = NewVar(std::move(name), PlanVarType::kItems);
  ops_.push_back(op);
  return op.target;
}

int Plan::EmitSemiJoin(int cond, int source, int input_var, std::string name) {
  PlanOp op;
  op.kind = PlanOpKind::kSemiJoin;
  op.cond = cond;
  op.source = source;
  op.input = input_var;
  op.target = NewVar(std::move(name), PlanVarType::kItems);
  ops_.push_back(op);
  return op.target;
}

int Plan::EmitLoad(int source, std::string name) {
  PlanOp op;
  op.kind = PlanOpKind::kLoad;
  op.source = source;
  op.target = NewVar(std::move(name), PlanVarType::kRelation);
  ops_.push_back(op);
  return op.target;
}

int Plan::EmitLocalSelect(int cond, int relation_var, std::string name) {
  PlanOp op;
  op.kind = PlanOpKind::kLocalSelect;
  op.cond = cond;
  op.input = relation_var;
  op.target = NewVar(std::move(name), PlanVarType::kItems);
  ops_.push_back(op);
  return op.target;
}

int Plan::EmitUnion(std::vector<int> inputs, std::string name) {
  PlanOp op;
  op.kind = PlanOpKind::kUnion;
  op.inputs = std::move(inputs);
  op.target = NewVar(std::move(name), PlanVarType::kItems);
  ops_.push_back(op);
  return op.target;
}

int Plan::EmitIntersect(std::vector<int> inputs, std::string name) {
  PlanOp op;
  op.kind = PlanOpKind::kIntersect;
  op.inputs = std::move(inputs);
  op.target = NewVar(std::move(name), PlanVarType::kItems);
  ops_.push_back(op);
  return op.target;
}

int Plan::EmitDifference(int lhs, int rhs, std::string name) {
  PlanOp op;
  op.kind = PlanOpKind::kDifference;
  op.inputs = {lhs, rhs};
  op.target = NewVar(std::move(name), PlanVarType::kItems);
  ops_.push_back(op);
  return op.target;
}

size_t Plan::num_source_queries() const {
  size_t count = 0;
  for (const PlanOp& op : ops_) {
    if (op.kind == PlanOpKind::kSelect || op.kind == PlanOpKind::kSemiJoin ||
        op.kind == PlanOpKind::kLoad) {
      ++count;
    }
  }
  return count;
}

Status Plan::Validate(size_t num_conditions, size_t num_sources) const {
  std::vector<bool> defined(vars_.size(), false);
  auto check_items_var = [&](int id, const char* role,
                             size_t op_index) -> Status {
    if (id < 0 || static_cast<size_t>(id) >= vars_.size() ||
        !defined[static_cast<size_t>(id)]) {
      return Status::InvalidArgument(
          StrFormat("op %zu: %s var %d undefined", op_index, role, id));
    }
    if (vars_[static_cast<size_t>(id)].type != PlanVarType::kItems) {
      return Status::InvalidArgument(
          StrFormat("op %zu: %s var %d is not an item set", op_index, role,
                    id));
    }
    return Status::Ok();
  };

  for (size_t k = 0; k < ops_.size(); ++k) {
    const PlanOp& op = ops_[k];
    if (op.target < 0 || static_cast<size_t>(op.target) >= vars_.size()) {
      return Status::InvalidArgument(StrFormat("op %zu: bad target", k));
    }
    if (defined[static_cast<size_t>(op.target)]) {
      return Status::InvalidArgument(
          StrFormat("op %zu: target var defined twice (not SSA)", k));
    }
    const bool needs_cond = op.kind == PlanOpKind::kSelect ||
                            op.kind == PlanOpKind::kSemiJoin ||
                            op.kind == PlanOpKind::kLocalSelect;
    if (needs_cond &&
        (op.cond < 0 || static_cast<size_t>(op.cond) >= num_conditions)) {
      return Status::InvalidArgument(
          StrFormat("op %zu: condition index %d out of range", k, op.cond));
    }
    const bool needs_source = op.kind == PlanOpKind::kSelect ||
                              op.kind == PlanOpKind::kSemiJoin ||
                              op.kind == PlanOpKind::kLoad;
    if (needs_source &&
        (op.source < 0 || static_cast<size_t>(op.source) >= num_sources)) {
      return Status::InvalidArgument(
          StrFormat("op %zu: source index %d out of range", k, op.source));
    }
    switch (op.kind) {
      case PlanOpKind::kSelect:
      case PlanOpKind::kLoad:
        break;
      case PlanOpKind::kSemiJoin:
        FUSION_RETURN_IF_ERROR(check_items_var(op.input, "semijoin input", k));
        break;
      case PlanOpKind::kLocalSelect: {
        const int id = op.input;
        if (id < 0 || static_cast<size_t>(id) >= vars_.size() ||
            !defined[static_cast<size_t>(id)] ||
            vars_[static_cast<size_t>(id)].type != PlanVarType::kRelation) {
          return Status::InvalidArgument(StrFormat(
              "op %zu: local select needs a loaded relation var", k));
        }
        break;
      }
      case PlanOpKind::kUnion:
      case PlanOpKind::kIntersect: {
        if (op.inputs.empty()) {
          return Status::InvalidArgument(
              StrFormat("op %zu: %s of zero inputs", k,
                        PlanOpKindName(op.kind)));
        }
        for (int id : op.inputs) {
          FUSION_RETURN_IF_ERROR(check_items_var(id, "operand", k));
        }
        break;
      }
      case PlanOpKind::kDifference: {
        if (op.inputs.size() != 2) {
          return Status::InvalidArgument(
              StrFormat("op %zu: difference needs exactly 2 operands", k));
        }
        for (int id : op.inputs) {
          FUSION_RETURN_IF_ERROR(check_items_var(id, "operand", k));
        }
        break;
      }
    }
    defined[static_cast<size_t>(op.target)] = true;
  }
  if (result_ < 0 || static_cast<size_t>(result_) >= vars_.size() ||
      !defined[static_cast<size_t>(result_)]) {
    return Status::InvalidArgument("plan result variable undefined");
  }
  if (vars_[static_cast<size_t>(result_)].type != PlanVarType::kItems) {
    return Status::InvalidArgument("plan result is not an item set");
  }
  return Status::Ok();
}

std::string Plan::ToString(const PlanPrintNames& names) const {
  auto cond_name = [&](int i) {
    if (static_cast<size_t>(i) < names.conditions.size()) {
      return names.conditions[static_cast<size_t>(i)];
    }
    return StrFormat("c%d", i + 1);
  };
  auto source_name = [&](int j) {
    if (static_cast<size_t>(j) < names.sources.size()) {
      return names.sources[static_cast<size_t>(j)];
    }
    return StrFormat("R%d", j + 1);
  };
  auto var_name = [&](int id) { return vars_[static_cast<size_t>(id)].name; };

  std::string out;
  for (size_t k = 0; k < ops_.size(); ++k) {
    const PlanOp& op = ops_[k];
    out += StrFormat("%2zu) %s := ", k + 1, var_name(op.target).c_str());
    switch (op.kind) {
      case PlanOpKind::kSelect:
        out += StrFormat("sq(%s, %s)", cond_name(op.cond).c_str(),
                         source_name(op.source).c_str());
        break;
      case PlanOpKind::kSemiJoin:
        out += StrFormat("sjq(%s, %s, %s)", cond_name(op.cond).c_str(),
                         source_name(op.source).c_str(),
                         var_name(op.input).c_str());
        break;
      case PlanOpKind::kLoad:
        out += StrFormat("lq(%s)", source_name(op.source).c_str());
        break;
      case PlanOpKind::kLocalSelect:
        out += StrFormat("sq(%s, %s)", cond_name(op.cond).c_str(),
                         var_name(op.input).c_str());
        break;
      case PlanOpKind::kUnion:
      case PlanOpKind::kIntersect: {
        const char* sym = op.kind == PlanOpKind::kUnion ? " ∪ " : " ∩ ";
        for (size_t i = 0; i < op.inputs.size(); ++i) {
          if (i > 0) out += sym;
          out += var_name(op.inputs[i]);
        }
        break;
      }
      case PlanOpKind::kDifference:
        out += var_name(op.inputs[0]) + " − " + var_name(op.inputs[1]);
        break;
    }
    out += "\n";
  }
  if (result_ >= 0) {
    out += StrFormat("result: %s\n", var_name(result_).c_str());
  }
  return out;
}

}  // namespace fusion
