#ifndef FUSION_PLAN_COST_ESTIMATOR_H_
#define FUSION_PLAN_COST_ESTIMATOR_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"

namespace fusion {

/// The estimator's account of one plan: total estimated cost (sum of source
/// query costs; local ops are free per the paper's model), a per-op cost
/// vector aligned with Plan::ops(), and the estimate for the result set.
struct PlanCostBreakdown {
  double total = 0.0;
  std::vector<double> per_op;
  SetEstimate result;
  /// Informational estimate of mediator-side evaluation time for the plan's
  /// local-select ops (seconds), under the batch/columnar evaluator. NOT
  /// included in `total`: the paper's model prices local mediator work at
  /// zero and every plan choice, golden ledger, and cost test depends on
  /// that. This field exists so EXPLAIN and benchmarks can report where
  /// mediator CPU time goes now that the data plane is vectorized.
  double local_eval_seconds = 0.0;
};

/// Calibration constants for the batch local-eval time estimate. Defaults
/// are rough figures for the columnar path on commodity hardware; the
/// benchmark harness can refit them from measured batch rates.
struct LocalEvalParams {
  /// Rows evaluated per batch kernel invocation (bitmap word granularity
  /// amortizes setup across this many rows).
  size_t batch_rows = 4096;
  /// Fixed cost per batch: kernel dispatch + bitmap allocation.
  double seconds_per_batch = 2e-7;
  /// Per-row, per-atom cost of the columnar kernels.
  double seconds_per_row = 1e-9;
  /// Per-row, per-atom cost of the row-at-a-time interpreter (Value
  /// dispatch + attribute lookup per atom). Kept for comparison output.
  double row_path_seconds_per_row = 4e-8;
};

/// Estimated seconds to evaluate a condition of `atoms` atoms over `rows`
/// rows, via the columnar batch path when `columnar` (amortized per-batch
/// overhead + vectorized per-row cost) or the legacy row interpreter
/// otherwise.
double EstimateLocalEvalSeconds(double rows, size_t atoms, bool columnar,
                                const LocalEvalParams& params = {});

/// Walks `plan` propagating SetEstimates through every variable and charging
/// each source query via `model`. With an OracleCostModel the returned total
/// is exactly the cost the executor will meter; with a parametric model it
/// is the optimizer's independence-assumption estimate.
Result<PlanCostBreakdown> EstimatePlanCost(const Plan& plan,
                                           const CostModel& model);

/// What the result cache can answer at plan time for the query being
/// optimized: per (condition, source), whether sq(c_i, R_j) is answerable
/// without a source call (exact entry, or derivable from a cached lq), and
/// per source whether lq(R_j) is cached. Built by the session from
/// SourceCallCache::ContainsSelect / ContainsLoad before each optimization;
/// a plain value type so plan/cost stays independent of the exec layer.
struct QueryCacheView {
  /// sq_answerable[cond][source] != 0 iff sq(c_cond, R_source) is free.
  std::vector<std::vector<char>> sq_answerable;
  /// sjq_answerable[cond][source] != 0 iff the memo holds *some* answer for
  /// semijoins on (c_cond, R_source): a cached sq/lq (always derivable) or a
  /// prior sjq entry. The sjq-entry case is optimistic — it derives free
  /// only when the new plan's candidates are contained in the cached
  /// anchor's, which holds for a repeated identical query but is not
  /// guaranteed across plan shapes. Mispricing costs nothing worse than the
  /// cache-oblivious plan: execution falls back to the real call.
  std::vector<std::vector<char>> sjq_answerable;
  /// lq_cached[source] != 0 iff lq(R_source) is cached.
  std::vector<char> lq_cached;

  bool SqAnswerable(size_t cond, size_t source) const {
    return cond < sq_answerable.size() &&
           source < sq_answerable[cond].size() &&
           sq_answerable[cond][source] != 0;
  }
  bool SjqAnswerable(size_t cond, size_t source) const {
    return cond < sjq_answerable.size() &&
           source < sjq_answerable[cond].size() &&
           sjq_answerable[cond][source] != 0;
  }
  bool LqCached(size_t source) const {
    return source < lq_cached.size() && lq_cached[source] != 0;
  }
  /// True iff the view can change any cost at all (skip wrapping otherwise).
  bool AnySet() const;
};

/// Decorator that re-prices calls the cache can answer at zero, leaving all
/// cardinality estimates (and every other cost) to the wrapped model:
///  - SqCost(c, R) = 0 when the view says sq(c, R) is answerable;
///  - SjqCost(c, R, X) = 0 when sq(c, R) is answerable — sjq(c, R, X) is then
///    the local intersection sq(c, R) ∩ X, free per the paper's cost model —
///    or when a prior sjq(c, R, ·) entry exists (containment derivation on a
///    repeated query); only when the base cost is finite (an unsupported
///    semijoin stays +inf so capability constraints survive re-pricing);
///  - LqCost(R) = 0 when lq(R) is cached.
/// This is what makes FILTER / SJ / SJA / greedy *cache-aware*: on a repeated
/// query the subplans the cache can answer look free, so the optimizer
/// steers the plan through them instead of re-deriving the cold-cache plan.
class CacheAwareCostModel final : public CostModel {
 public:
  /// Both referents must outlive the model.
  CacheAwareCostModel(const CostModel& base, const QueryCacheView& view)
      : base_(base), view_(view) {}

  size_t num_conditions() const override { return base_.num_conditions(); }
  size_t num_sources() const override { return base_.num_sources(); }
  double universe_size() const override { return base_.universe_size(); }

  double SqCost(size_t cond, size_t source) const override {
    if (view_.SqAnswerable(cond, source)) return 0.0;
    return base_.SqCost(cond, source);
  }
  double SjqCost(size_t cond, size_t source,
                 const SetEstimate& x) const override {
    const double cost = base_.SjqCost(cond, source, x);
    if ((view_.SqAnswerable(cond, source) ||
         view_.SjqAnswerable(cond, source)) &&
        cost != std::numeric_limits<double>::infinity()) {
      return 0.0;
    }
    return cost;
  }
  double LqCost(size_t source) const override {
    if (view_.LqCached(source)) return 0.0;
    return base_.LqCost(source);
  }

  SetEstimate SqResult(size_t cond, size_t source) const override {
    return base_.SqResult(cond, source);
  }
  SetEstimate SjqResult(size_t cond, size_t source,
                        const SetEstimate& x) const override {
    return base_.SjqResult(cond, source, x);
  }
  double FetchCost(size_t source, double item_count) const override {
    return base_.FetchCost(source, item_count);
  }

 private:
  const CostModel& base_;
  const QueryCacheView& view_;
};

/// As EstimatePlanCost(plan, model) but pricing cache-answerable calls at
/// zero via CacheAwareCostModel.
Result<PlanCostBreakdown> EstimatePlanCost(const Plan& plan,
                                           const CostModel& model,
                                           const QueryCacheView& view);

}  // namespace fusion

#endif  // FUSION_PLAN_COST_ESTIMATOR_H_
