#ifndef FUSION_PLAN_COST_ESTIMATOR_H_
#define FUSION_PLAN_COST_ESTIMATOR_H_

#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"

namespace fusion {

/// The estimator's account of one plan: total estimated cost (sum of source
/// query costs; local ops are free per the paper's model), a per-op cost
/// vector aligned with Plan::ops(), and the estimate for the result set.
struct PlanCostBreakdown {
  double total = 0.0;
  std::vector<double> per_op;
  SetEstimate result;
};

/// Walks `plan` propagating SetEstimates through every variable and charging
/// each source query via `model`. With an OracleCostModel the returned total
/// is exactly the cost the executor will meter; with a parametric model it
/// is the optimizer's independence-assumption estimate.
Result<PlanCostBreakdown> EstimatePlanCost(const Plan& plan,
                                           const CostModel& model);

}  // namespace fusion

#endif  // FUSION_PLAN_COST_ESTIMATOR_H_
