#ifndef FUSION_PLAN_PLAN_H_
#define FUSION_PLAN_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fusion {

/// The operation vocabulary of mediator query plans. The first three are
/// source queries (they cost money under the paper's model); the rest are
/// free local computations at the mediator.
enum class PlanOpKind {
  kSelect,       // X := sq(c_i, R_j)
  kSemiJoin,     // X := sjq(c_i, R_j, Y)
  kLoad,         // Y := lq(R_j)            (postoptimization, Section 4)
  kUnion,        // X := X_1 ∪ ... ∪ X_k
  kIntersect,    // X := X_1 ∩ ... ∩ X_k
  kDifference,   // X := Y − Z              (postoptimization, Section 4)
  kLocalSelect,  // X := sq(c_i, Y)  for a loaded relation Y (local, free)
};

const char* PlanOpKindName(PlanOpKind kind);

/// One step of a plan. Fields are used per kind as documented above;
/// `target` is the variable this op defines (plans are in SSA form —
/// display names may repeat, variable ids never do).
struct PlanOp {
  PlanOpKind kind = PlanOpKind::kSelect;
  int target = -1;
  int cond = -1;            // kSelect / kSemiJoin / kLocalSelect
  int source = -1;          // kSelect / kSemiJoin / kLoad
  int input = -1;           // kSemiJoin: semijoin set; kLocalSelect: relation
  std::vector<int> inputs;  // kUnion / kIntersect (>=1), kDifference (==2)
};

/// What a plan variable holds.
enum class PlanVarType { kItems, kRelation };

struct PlanVar {
  std::string name;  // display name (paper-style X11, X1, Y3, ...)
  PlanVarType type = PlanVarType::kItems;
};

/// Names used when pretty-printing a plan in the paper's notation. Defaults
/// produce c1..cm and R1..Rn.
struct PlanPrintNames {
  std::vector<std::string> conditions;  // text for c_i; may be empty
  std::vector<std::string> sources;     // text for R_j; may be empty
};

/// A mediator query plan: a straight-line program over item-set (and, after
/// postoptimization, loaded-relation) variables, mirroring the listings in
/// Figures 2 and 5 of the paper. Built through the Emit* methods; `result()`
/// designates the variable holding the query answer.
class Plan {
 public:
  Plan() = default;

  /// Each Emit* appends one op and returns the id of the defined variable.
  /// `name` is the display name; when empty a default (V<k>) is chosen.
  int EmitSelect(int cond, int source, std::string name = "");
  int EmitSemiJoin(int cond, int source, int input_var, std::string name = "");
  int EmitLoad(int source, std::string name = "");
  int EmitLocalSelect(int cond, int relation_var, std::string name = "");
  int EmitUnion(std::vector<int> inputs, std::string name = "");
  int EmitIntersect(std::vector<int> inputs, std::string name = "");
  int EmitDifference(int lhs, int rhs, std::string name = "");

  void SetResult(int var) { result_ = var; }
  int result() const { return result_; }

  const std::vector<PlanOp>& ops() const { return ops_; }
  const std::vector<PlanVar>& vars() const { return vars_; }
  const PlanVar& var(int id) const { return vars_[static_cast<size_t>(id)]; }
  size_t num_ops() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Number of costed source queries (sq + sjq + lq ops).
  size_t num_source_queries() const;

  /// Structural well-formedness: every referenced variable is defined by an
  /// earlier op, var types match op expectations, cond/source indices are in
  /// range, and the result variable holds items.
  Status Validate(size_t num_conditions, size_t num_sources) const;

  /// Pretty-prints in the paper's numbered-step notation, e.g.
  ///   1) X11 := sq(c1, R1)
  ///   3) X1 := X11 ∪ X12
  std::string ToString(const PlanPrintNames& names = {}) const;

 private:
  int NewVar(std::string name, PlanVarType type);

  std::vector<PlanOp> ops_;
  std::vector<PlanVar> vars_;
  int result_ = -1;
};

}  // namespace fusion

#endif  // FUSION_PLAN_PLAN_H_
