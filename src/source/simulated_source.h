#ifndef FUSION_SOURCE_SIMULATED_SOURCE_H_
#define FUSION_SOURCE_SIMULATED_SOURCE_H_

#include <string>

#include <map>
#include <mutex>

#include "relational/column_index.h"
#include "source/source_wrapper.h"

namespace fusion {

/// An autonomous Internet source simulated in-process: a relation plus a
/// capability profile and a network cost profile. Substitutes for the live
/// DMV/bibliographic sources of the paper while exposing exactly the costs
/// the paper's model is phrased in (see DESIGN.md §2).
class SimulatedSource : public SourceWrapper {
 public:
  SimulatedSource(std::string name, Relation relation,
                  Capabilities capabilities, NetworkProfile network);

  /// Copies the source's identity and data; the lazy index cache (and its
  /// mutex) starts fresh in the copy. Tests copy simulated sources to build
  /// decorated twin catalogs.
  SimulatedSource(const SimulatedSource& other)
      : name_(other.name_),
        relation_(other.relation_),
        capabilities_(other.capabilities_),
        network_(other.network_) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return relation_.schema(); }
  const Capabilities& capabilities() const override { return capabilities_; }
  const NetworkProfile& network() const { return network_; }

  /// Oracle access to the backing relation (tests, oracle cost model,
  /// reference evaluation). A real deployment would not have this.
  const Relation& relation() const { return relation_; }

  Result<ItemSet> Select(const Condition& cond,
                         const std::string& merge_attribute,
                         CostLedger* ledger) override;

  Result<ItemSet> SemiJoin(const Condition& cond,
                           const std::string& merge_attribute,
                           const ItemSet& candidates,
                           CostLedger* ledger) override;

  Result<Relation> Load(CostLedger* ledger) override;

  Result<Relation> FetchRecords(const std::string& merge_attribute,
                                const ItemSet& items,
                                CostLedger* ledger) override;

  const SimulatedSource* AsSimulated() const override { return this; }

  /// Lazily built (and cached) Bloom filter over the non-NULL values of
  /// `attribute`, at ~1% false-positive rate. Returns nullptr for unknown
  /// attributes. Shares the index mutex; built filters are immutable.
  std::shared_ptr<const BloomFilter> MergeBloom(
      const std::string& attribute) override;

  /// The costs this source charges, as pure functions of the data volumes —
  /// shared with cost models so estimates and metering agree by construction.
  double SelectCost(size_t result_size) const;
  double SemiJoinCost(size_t candidate_count, size_t result_size) const;
  double LoadCost() const;
  double FetchCost(size_t item_count, size_t record_count) const;

 private:
  /// Lazily built hash index over `attribute`, mutex-guarded so concurrent
  /// queries (parallel plan workers, racing executions) build it exactly
  /// once. Pure accelerator: results and metered costs are identical to the
  /// scan path (property-tested). Built indexes are immutable; map nodes are
  /// pointer-stable, so returned pointers survive later insertions.
  Result<const ColumnIndex*> IndexFor(const std::string& attribute) const;

  std::string name_;
  Relation relation_;
  Capabilities capabilities_;
  NetworkProfile network_;
  mutable std::mutex index_mu_;
  mutable std::map<std::string, ColumnIndex> indexes_;
  mutable std::map<std::string, std::shared_ptr<const BloomFilter>> blooms_;
};

}  // namespace fusion

#endif  // FUSION_SOURCE_SIMULATED_SOURCE_H_
