#ifndef FUSION_SOURCE_CATALOG_H_
#define FUSION_SOURCE_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "source/source_wrapper.h"

namespace fusion {

/// The mediator's registry of participating sources R_1..R_n. Owns the
/// wrappers; sources are addressed by index (matching the paper's R_j
/// subscripts) or by name.
class SourceCatalog {
 public:
  SourceCatalog() = default;

  // Move-only: owns the wrappers.
  SourceCatalog(SourceCatalog&&) = default;
  SourceCatalog& operator=(SourceCatalog&&) = default;
  SourceCatalog(const SourceCatalog&) = delete;
  SourceCatalog& operator=(const SourceCatalog&) = delete;

  /// Registers a source. All sources must share one schema (checked against
  /// the first registered source). Names must be unique.
  Status Add(std::unique_ptr<SourceWrapper> source);

  size_t size() const { return sources_.size(); }
  bool empty() const { return sources_.empty(); }

  SourceWrapper& source(size_t index) const { return *sources_[index]; }
  Result<size_t> IndexOf(const std::string& name) const;

  /// Schema shared by all sources; error if the catalog is empty.
  Result<Schema> CommonSchema() const;

  /// Names in index order.
  std::vector<std::string> Names() const;

 private:
  std::vector<std::unique_ptr<SourceWrapper>> sources_;
};

}  // namespace fusion

#endif  // FUSION_SOURCE_CATALOG_H_
