#include "source/capabilities.h"

#include "common/str_util.h"

namespace fusion {

const char* SemijoinSupportName(SemijoinSupport s) {
  switch (s) {
    case SemijoinSupport::kNative:
      return "native";
    case SemijoinSupport::kPassedBindingsOnly:
      return "passed-bindings";
    case SemijoinSupport::kUnsupported:
      return "unsupported";
  }
  return "?";
}

std::string Capabilities::ToString() const {
  return StrFormat("caps(semijoin=%s, load=%s)", SemijoinSupportName(semijoin),
                   supports_load ? "yes" : "no");
}

std::string NetworkProfile::ToString() const {
  return StrFormat(
      "net(overhead=%.3g, send=%.3g, recv=%.3g, proc=%.3g, width=%.3g)",
      query_overhead, cost_per_item_sent, cost_per_item_received,
      processing_per_tuple, record_width_factor);
}

}  // namespace fusion
