#include "source/simulated_source.h"

#include <algorithm>
#include <utility>

namespace fusion {

SimulatedSource::SimulatedSource(std::string name, Relation relation,
                                 Capabilities capabilities,
                                 NetworkProfile network)
    : name_(std::move(name)),
      relation_(std::move(relation)),
      capabilities_(capabilities),
      network_(network) {}

double SimulatedSource::SelectCost(size_t result_size) const {
  return network_.query_overhead +
         network_.processing_per_tuple * static_cast<double>(relation_.size()) +
         network_.cost_per_item_received * static_cast<double>(result_size);
}

double SimulatedSource::SemiJoinCost(size_t candidate_count,
                                     size_t result_size) const {
  return network_.query_overhead +
         network_.cost_per_item_sent * static_cast<double>(candidate_count) +
         network_.processing_per_tuple * static_cast<double>(relation_.size()) +
         network_.cost_per_item_received * static_cast<double>(result_size);
}

double SimulatedSource::LoadCost() const {
  return network_.query_overhead +
         network_.processing_per_tuple * static_cast<double>(relation_.size()) +
         network_.cost_per_item_received * network_.record_width_factor *
             static_cast<double>(relation_.size());
}

double SimulatedSource::FetchCost(size_t item_count,
                                  size_t record_count) const {
  return network_.query_overhead +
         network_.cost_per_item_sent * static_cast<double>(item_count) +
         network_.processing_per_tuple * static_cast<double>(relation_.size()) +
         network_.cost_per_item_received * network_.record_width_factor *
             static_cast<double>(record_count);
}

Result<ItemSet> SimulatedSource::Select(const Condition& cond,
                                        const std::string& merge_attribute,
                                        CostLedger* ledger) {
  FUSION_ASSIGN_OR_RETURN(ItemSet items,
                          relation_.SelectItems(cond, merge_attribute));
  if (ledger != nullptr) {
    Charge charge;
    charge.source = name_;
    charge.kind = ChargeKind::kSelect;
    charge.detail = cond.ToString();
    charge.items_received = items.size();
    charge.tuples_scanned = relation_.size();
    charge.cost = SelectCost(items.size());
    ledger->Add(std::move(charge));
  }
  return items;
}

std::shared_ptr<const BloomFilter> SimulatedSource::MergeBloom(
    const std::string& attribute) {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = blooms_.find(attribute);
  if (it != blooms_.end()) return it->second;
  const Result<size_t> idx = relation_.schema().IndexOf(attribute);
  if (!idx.ok()) return nullptr;
  auto filter =
      std::make_shared<BloomFilter>(std::max<size_t>(1, relation_.size()),
                                    /*target_fpp=*/0.01);
  for (const Tuple& t : relation_.tuples()) {
    const Value& v = t[idx.value()];
    if (!v.is_null()) filter->Insert(v);
  }
  std::shared_ptr<const BloomFilter> built = std::move(filter);
  blooms_.emplace(attribute, built);
  return built;
}

Result<const ColumnIndex*> SimulatedSource::IndexFor(
    const std::string& attribute) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = indexes_.find(attribute);
  if (it == indexes_.end()) {
    FUSION_ASSIGN_OR_RETURN(ColumnIndex index,
                            ColumnIndex::Build(relation_, attribute));
    it = indexes_.emplace(attribute, std::move(index)).first;
  }
  return &it->second;
}

Result<ItemSet> SimulatedSource::SemiJoin(const Condition& cond,
                                          const std::string& merge_attribute,
                                          const ItemSet& candidates,
                                          CostLedger* ledger) {
  if (capabilities_.semijoin != SemijoinSupport::kNative) {
    return Status::Unsupported("source '" + name_ +
                               "' does not support native semijoin queries (" +
                               capabilities_.ToString() + ")");
  }
  // Index-accelerated evaluation: only the candidates' rows are touched.
  // Semantically identical to Relation::SemiJoinItems over a full scan.
  FUSION_RETURN_IF_ERROR(cond.Validate(relation_.schema()));
  FUSION_ASSIGN_OR_RETURN(const ColumnIndex* index,
                          IndexFor(merge_attribute));
  std::vector<Value> matched;
  for (const Value& candidate : candidates) {
    const std::vector<size_t>* rows = index->Rows(candidate);
    if (rows == nullptr) continue;
    for (const size_t row : *rows) {
      FUSION_ASSIGN_OR_RETURN(
          const bool keep,
          cond.Evaluate(relation_.schema(), relation_.tuple(row)));
      if (keep) {
        matched.push_back(candidate);
        break;
      }
    }
  }
  ItemSet items(std::move(matched));
  if (ledger != nullptr) {
    Charge charge;
    charge.source = name_;
    charge.kind = ChargeKind::kSemiJoin;
    charge.detail = cond.ToString();
    charge.items_sent = candidates.size();
    charge.items_received = items.size();
    charge.tuples_scanned = relation_.size();
    charge.cost = SemiJoinCost(candidates.size(), items.size());
    ledger->Add(std::move(charge));
  }
  return items;
}

Result<Relation> SimulatedSource::Load(CostLedger* ledger) {
  if (!capabilities_.supports_load) {
    return Status::Unsupported("source '" + name_ + "' does not support lq");
  }
  if (ledger != nullptr) {
    Charge charge;
    charge.source = name_;
    charge.kind = ChargeKind::kLoad;
    charge.detail = "lq(" + name_ + ")";
    charge.items_received = relation_.size();
    charge.tuples_scanned = relation_.size();
    charge.cost = LoadCost();
    ledger->Add(std::move(charge));
  }
  return relation_;
}

Result<Relation> SimulatedSource::FetchRecords(
    const std::string& merge_attribute, const ItemSet& items,
    CostLedger* ledger) {
  FUSION_ASSIGN_OR_RETURN(const ColumnIndex* index,
                          IndexFor(merge_attribute));
  // Collect row positions in relation order so output matches the scan path.
  std::vector<size_t> rows;
  for (const Value& item : items) {
    const std::vector<size_t>* hits = index->Rows(item);
    if (hits != nullptr) rows.insert(rows.end(), hits->begin(), hits->end());
  }
  std::sort(rows.begin(), rows.end());
  Relation out(relation_.schema());
  for (const size_t row : rows) {
    out.AppendUnchecked(relation_.tuple(row));
  }
  if (ledger != nullptr) {
    Charge charge;
    charge.source = name_;
    charge.kind = ChargeKind::kFetchRecords;
    charge.detail = "fetch " + std::to_string(items.size()) + " items";
    charge.items_sent = items.size();
    charge.items_received = out.size();
    charge.tuples_scanned = relation_.size();
    charge.cost = FetchCost(items.size(), out.size());
    ledger->Add(std::move(charge));
  }
  return out;
}

}  // namespace fusion
