#include "source/catalog.h"

namespace fusion {

Status SourceCatalog::Add(std::unique_ptr<SourceWrapper> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("null source wrapper");
  }
  for (const auto& existing : sources_) {
    if (existing->name() == source->name()) {
      return Status::AlreadyExists("source '" + source->name() +
                                   "' already registered");
    }
  }
  if (!sources_.empty() && sources_[0]->schema() != source->schema()) {
    return Status::InvalidArgument(
        "source '" + source->name() + "' schema " +
        source->schema().ToString() + " differs from catalog schema " +
        sources_[0]->schema().ToString());
  }
  sources_.push_back(std::move(source));
  return Status::Ok();
}

Result<size_t> SourceCatalog::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i]->name() == name) return i;
  }
  return Status::NotFound("no source named '" + name + "'");
}

Result<Schema> SourceCatalog::CommonSchema() const {
  if (sources_.empty()) {
    return Status::InvalidArgument("empty source catalog");
  }
  return sources_[0]->schema();
}

std::vector<std::string> SourceCatalog::Names() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& s : sources_) out.push_back(s->name());
  return out;
}

}  // namespace fusion
