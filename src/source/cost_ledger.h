#ifndef FUSION_SOURCE_COST_LEDGER_H_
#define FUSION_SOURCE_COST_LEDGER_H_

#include <string>
#include <vector>

namespace fusion {

/// Kinds of metered source interactions.
enum class ChargeKind {
  kSelect,
  kSemiJoin,
  kEmulatedSemiJoinProbe,  // one `c AND M = m` probe of an emulated semijoin
  kLoad,
  kFetchRecords,  // second-phase record retrieval
};

const char* ChargeKindName(ChargeKind kind);

/// One metered source query: who was asked what, how much data moved, and
/// what it cost under that source's NetworkProfile.
struct Charge {
  std::string source;
  ChargeKind kind = ChargeKind::kSelect;
  std::string detail;        // e.g. the condition text
  size_t items_sent = 0;     // mediator -> source
  size_t items_received = 0; // source -> mediator
  size_t tuples_scanned = 0; // source-side work
  double cost = 0.0;
};

/// Accumulates the actual cost of executing a plan: every wrapper call
/// appends a Charge. The paper's cost of a plan is exactly `total()` —
/// the sum of the constituent source-query costs (local mediator ops are
/// free by assumption).
class CostLedger {
 public:
  void Add(Charge charge);

  double total() const { return total_; }
  size_t num_queries() const { return charges_.size(); }
  size_t total_items_sent() const;
  size_t total_items_received() const;
  const std::vector<Charge>& charges() const { return charges_; }

  void Clear();

  /// Multi-line human-readable account of every charge plus the total.
  std::string Report() const;

 private:
  std::vector<Charge> charges_;
  double total_ = 0.0;
};

}  // namespace fusion

#endif  // FUSION_SOURCE_COST_LEDGER_H_
