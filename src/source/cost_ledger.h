#ifndef FUSION_SOURCE_COST_LEDGER_H_
#define FUSION_SOURCE_COST_LEDGER_H_

#include <string>
#include <vector>

namespace fusion {

/// Kinds of metered source interactions.
enum class ChargeKind {
  kSelect,
  kSemiJoin,
  kEmulatedSemiJoinProbe,  // one `c AND M = m` probe of an emulated semijoin
  kLoad,
  kFetchRecords,  // second-phase record retrieval
};

const char* ChargeKindName(ChargeKind kind);

/// One metered source query: who was asked what, how much data moved, and
/// what it cost under that source's NetworkProfile.
struct Charge {
  std::string source;
  ChargeKind kind = ChargeKind::kSelect;
  std::string detail;        // e.g. the condition text
  size_t items_sent = 0;     // mediator -> source
  size_t items_received = 0; // source -> mediator
  size_t tuples_scanned = 0; // source-side work
  double cost = 0.0;
};

/// Accumulates the actual cost of executing a plan: every wrapper call
/// appends a Charge. The paper's cost of a plan is exactly `total()` —
/// the sum of the constituent source-query costs (local mediator ops are
/// free by assumption).
///
/// Threading contract: a ledger is single-thread-confined — Add/MergeFrom
/// are unsynchronized read-modify-writes (charges_ grows, total_
/// accumulates), so concurrent accumulation into one ledger is a data race.
/// Concurrent executors must give each worker (the parallel plan executor:
/// each *op*) a private sub-ledger and MergeFrom them after joining, in a
/// deterministic order; merging charge-by-charge keeps even the
/// floating-point total identical to the equivalent sequential accumulation.
class CostLedger {
 public:
  CostLedger() = default;
  CostLedger(const CostLedger&) = default;
  CostLedger& operator=(const CostLedger&) = default;
  /// Moves leave the source cleared (not just unspecified), so a sub-ledger
  /// already consumed by MergeFrom reads as empty — merging it again is a
  /// no-op rather than a double charge.
  CostLedger(CostLedger&& other) noexcept;
  CostLedger& operator=(CostLedger&& other) noexcept;

  void Add(Charge charge);

  /// Appends every charge of `other`, in order, as if Add had been called
  /// for each — the join step for per-worker sub-ledgers.
  void MergeFrom(CostLedger other);

  double total() const { return total_; }
  size_t num_queries() const { return charges_.size(); }
  size_t total_items_sent() const;
  size_t total_items_received() const;
  const std::vector<Charge>& charges() const { return charges_; }

  void Clear();

  /// Multi-line human-readable account of every charge plus the total.
  std::string Report() const;

 private:
  std::vector<Charge> charges_;
  double total_ = 0.0;
};

}  // namespace fusion

#endif  // FUSION_SOURCE_COST_LEDGER_H_
