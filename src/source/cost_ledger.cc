#include "source/cost_ledger.h"

#include <utility>

#include "common/str_util.h"

namespace fusion {

const char* ChargeKindName(ChargeKind kind) {
  switch (kind) {
    case ChargeKind::kSelect:
      return "sq";
    case ChargeKind::kSemiJoin:
      return "sjq";
    case ChargeKind::kEmulatedSemiJoinProbe:
      return "sjq-probe";
    case ChargeKind::kLoad:
      return "lq";
    case ChargeKind::kFetchRecords:
      return "fetch";
  }
  return "?";
}

CostLedger::CostLedger(CostLedger&& other) noexcept
    : charges_(std::move(other.charges_)), total_(other.total_) {
  other.Clear();
}

CostLedger& CostLedger::operator=(CostLedger&& other) noexcept {
  if (this != &other) {
    charges_ = std::move(other.charges_);
    total_ = other.total_;
    other.Clear();
  }
  return *this;
}

void CostLedger::Add(Charge charge) {
  total_ += charge.cost;
  charges_.push_back(std::move(charge));
}

void CostLedger::MergeFrom(CostLedger other) {
  // Charge-by-charge so the floating-point total accumulates in exactly the
  // same order as sequential Add calls would have produced.
  for (Charge& charge : other.charges_) {
    total_ += charge.cost;
    charges_.push_back(std::move(charge));
  }
  other.Clear();
}

size_t CostLedger::total_items_sent() const {
  size_t out = 0;
  for (const Charge& c : charges_) out += c.items_sent;
  return out;
}

size_t CostLedger::total_items_received() const {
  size_t out = 0;
  for (const Charge& c : charges_) out += c.items_received;
  return out;
}

void CostLedger::Clear() {
  charges_.clear();
  total_ = 0.0;
}

std::string CostLedger::Report() const {
  std::string out;
  for (const Charge& c : charges_) {
    out += StrFormat("%-10s %-8s sent=%-6zu recv=%-6zu scan=%-7zu cost=%-10.3f %s\n",
                     c.source.c_str(), ChargeKindName(c.kind), c.items_sent,
                     c.items_received, c.tuples_scanned, c.cost,
                     c.detail.c_str());
  }
  out += StrFormat("TOTAL: %zu queries, cost %.3f\n", charges_.size(), total_);
  return out;
}

}  // namespace fusion
