#ifndef FUSION_SOURCE_SOURCE_WRAPPER_H_
#define FUSION_SOURCE_SOURCE_WRAPPER_H_

#include <memory>
#include <string>

#include "common/bloom.h"
#include "common/item_set.h"
#include "common/status.h"
#include "relational/condition.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "source/capabilities.h"
#include "source/cost_ledger.h"

namespace fusion {

class SimulatedSource;

/// The interface every source exports to the mediator (Section 2.1): a named
/// relation behind a wrapper that answers selection queries and (capability
/// permitting) semijoin queries, plus the lq / record-fetch extensions used
/// by postoptimization and two-phase processing.
///
/// Every call meters its actual cost into `ledger` (if non-null); that is the
/// ground truth against which estimated plan costs are compared.
///
/// Thread-safety contract (relied on by the parallel plan executor):
/// metadata accessors are immutable after construction, and query methods
/// must tolerate concurrent invocation — implementations guard their own
/// mutable state (SimulatedSource's lazy indexes, FlakySource's failure
/// stream, RemoteSource's transport). The *ledger* is caller-owned and
/// single-thread-confined: concurrent callers must pass distinct ledgers
/// (the parallel executor passes per-op sub-ledgers and merges at join).
class SourceWrapper {
 public:
  virtual ~SourceWrapper() = default;

  virtual const std::string& name() const = 0;
  virtual const Schema& schema() const = 0;
  virtual const Capabilities& capabilities() const = 0;

  /// sq(c, R): the set of merge-attribute values of tuples satisfying `cond`.
  virtual Result<ItemSet> Select(const Condition& cond,
                                 const std::string& merge_attribute,
                                 CostLedger* ledger) = 0;

  /// sjq(c, R, X): the subset of `candidates` appearing in tuples satisfying
  /// `cond`. Fails with kUnsupported unless capabilities().semijoin is
  /// kNative — emulation is the *mediator's* job (see exec/ executor).
  virtual Result<ItemSet> SemiJoin(const Condition& cond,
                                   const std::string& merge_attribute,
                                   const ItemSet& candidates,
                                   CostLedger* ledger) = 0;

  /// lq(R): ships the entire relation to the mediator.
  virtual Result<Relation> Load(CostLedger* ledger) = 0;

  /// Second-phase retrieval: full records of the given items.
  virtual Result<Relation> FetchRecords(const std::string& merge_attribute,
                                        const ItemSet& items,
                                        CostLedger* ledger) = 0;

  /// Oracle hook (no RTTI in this codebase): non-null when the wrapper is a
  /// SimulatedSource, enabling perfect-information statistics in controlled
  /// experiments. Real deployments return the default null.
  virtual const SimulatedSource* AsSimulated() const { return nullptr; }

  /// Optional: a Bloom filter over the source's non-NULL values of
  /// `attribute`, for mediator-side semijoin probe pre-filtering. A Bloom
  /// filter has no false negatives, so a mediator may skip any probe whose
  /// binding the filter rejects without changing the answer. Sources that
  /// cannot provide one (e.g. remote wrappers without the extension) return
  /// the default nullptr and the mediator probes everything.
  virtual std::shared_ptr<const BloomFilter> MergeBloom(
      const std::string& attribute) {
    return nullptr;
  }
};

}  // namespace fusion

#endif  // FUSION_SOURCE_SOURCE_WRAPPER_H_
