#include "source/flaky_source.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "source/simulated_source.h"

namespace fusion {

Status FlakySource::MaybeFail(const char* operation, CostLedger* ledger) {
  if (options_.target_operation != nullptr &&
      std::strcmp(options_.target_operation, operation) != 0) {
    return Status::Ok();  // untargeted op: no decision consumed, no delay
  }
  if (options_.injected_latency_seconds > 0.0) {
    // Outside the mutex: a slow source delays its callers, not its peers.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.injected_latency_seconds));
  }
  bool fail;
  bool outage;
  {
    // One atomic decision per call: the counter increment and the RNG draw
    // must not interleave with another attempt's, or retries could lose
    // counts / tear the deterministic failure stream.
    std::lock_guard<std::mutex> lock(mu_);
    const size_t call_index = calls_attempted_++;
    outage = call_index >= options_.outage_start &&
             call_index < options_.outage_end;
    fail = outage || call_index < options_.fail_first_k ||
           rng_.Bernoulli(options_.failure_probability);
    if (fail) ++calls_failed_;
  }
  if (!fail) return Status::Ok();
  if (ledger != nullptr) {
    Charge charge;
    charge.source = inner_->name();
    charge.kind = ChargeKind::kSelect;
    charge.detail = std::string("FAILED ") + operation;
    // The request round trip was paid even though no answer came back.
    const SimulatedSource* sim = inner_->AsSimulated();
    charge.cost = sim != nullptr ? sim->network().query_overhead : 0.0;
    ledger->Add(std::move(charge));
  }
  if (outage) {
    return Status(options_.outage_code,
                  std::string("source '") + inner_->name() +
                      "' is down (outage) during " + operation);
  }
  return Status(options_.failure_code,
                std::string("transient failure at source '") +
                    inner_->name() + "' during " + operation);
}

Result<ItemSet> FlakySource::Select(const Condition& cond,
                                    const std::string& merge_attribute,
                                    CostLedger* ledger) {
  FUSION_RETURN_IF_ERROR(MaybeFail("sq", ledger));
  return inner_->Select(cond, merge_attribute, ledger);
}

Result<ItemSet> FlakySource::SemiJoin(const Condition& cond,
                                      const std::string& merge_attribute,
                                      const ItemSet& candidates,
                                      CostLedger* ledger) {
  FUSION_RETURN_IF_ERROR(MaybeFail("sjq", ledger));
  return inner_->SemiJoin(cond, merge_attribute, candidates, ledger);
}

Result<Relation> FlakySource::Load(CostLedger* ledger) {
  FUSION_RETURN_IF_ERROR(MaybeFail("lq", ledger));
  return inner_->Load(ledger);
}

Result<Relation> FlakySource::FetchRecords(const std::string& merge_attribute,
                                           const ItemSet& items,
                                           CostLedger* ledger) {
  FUSION_RETURN_IF_ERROR(MaybeFail("fetch", ledger));
  return inner_->FetchRecords(merge_attribute, items, ledger);
}

}  // namespace fusion
