#ifndef FUSION_SOURCE_FLAKY_SOURCE_H_
#define FUSION_SOURCE_FLAKY_SOURCE_H_

#include <memory>
#include <mutex>

#include "common/rng.h"
#include "source/source_wrapper.h"

namespace fusion {

/// Failure-injection decorator: wraps any SourceWrapper and makes calls fail
/// transiently — Internet sources time out, rate-limit, and drop
/// connections, and a mediator must cope. Used by tests and robustness
/// benchmarks together with the executor's retry option.
///
/// A failed call still charges the network round-trip overhead to the ledger
/// (the request went out; the answer never came back), so retries are not
/// free — exactly the accounting a real mediator would face.
///
/// Thread-safety: the fail/pass decision (attempt counter + RNG draw) is
/// mutex-guarded, so interleaved attempts from parallel workers neither lose
/// counts nor tear the RNG stream; each call consumes exactly one decision.
/// (The parallel executor additionally serializes same-source ops in plan
/// order, which is what keeps the *assignment* of decisions to calls — and
/// hence the whole execution — deterministic.) The inner source must itself
/// be safe for whatever concurrency the caller applies.
class FlakySource : public SourceWrapper {
 public:
  struct Options {
    /// Probability that any given call fails (after fail_first_k expires).
    double failure_probability = 0.0;
    /// The first k calls fail deterministically (for targeted tests).
    size_t fail_first_k = 0;
    /// Seed of the failure-decision stream. When the FUSION_SEED environment
    /// variable is set (the macro harness's replay knob), the stream is
    /// re-derived as MixSeed(FUSION_SEED, seed): distinct FlakySources keep
    /// distinct streams, but one exported variable replays them all.
    uint64_t seed = 1;
    /// Status code of an injected *transient* failure. kInternal (the
    /// default) is what the executor's retry policy re-attempts; tests use
    /// other codes to assert that only transients are retried.
    StatusCode failure_code = StatusCode::kInternal;
    /// Outage window: calls with index in [outage_start, outage_end) fail
    /// with `outage_code` — a *permanent* failure (retries don't help while
    /// the source is down; the circuit breaker is the right tool). The
    /// default empty window injects no outage.
    size_t outage_start = 0;
    size_t outage_end = 0;
    StatusCode outage_code = StatusCode::kUnavailable;
    /// When non-null, only this operation ("sq", "sjq", "lq", "fetch") is
    /// subject to failure injection and latency; other operations pass
    /// through without consuming a call index or an RNG decision. Must
    /// point at a string with static storage duration.
    const char* target_operation = nullptr;
    /// Wall-clock delay added to every (targeted) call, successful or not —
    /// slow sources are how per-call timeouts get exercised. Applied
    /// outside the decision mutex, so parallel calls still overlap.
    double injected_latency_seconds = 0.0;
  };

  FlakySource(std::unique_ptr<SourceWrapper> inner, const Options& options)
      : inner_(std::move(inner)),
        options_(options),
        rng_(HasGlobalSeed() ? MixSeed(GlobalSeed(0), options.seed)
                             : options.seed) {}

  const std::string& name() const override { return inner_->name(); }
  const Schema& schema() const override { return inner_->schema(); }
  const Capabilities& capabilities() const override {
    return inner_->capabilities();
  }
  const SimulatedSource* AsSimulated() const override {
    return inner_->AsSimulated();
  }
  /// Metadata, not a metered call: passes through without failure injection.
  std::shared_ptr<const BloomFilter> MergeBloom(
      const std::string& attribute) override {
    return inner_->MergeBloom(attribute);
  }

  Result<ItemSet> Select(const Condition& cond,
                         const std::string& merge_attribute,
                         CostLedger* ledger) override;
  Result<ItemSet> SemiJoin(const Condition& cond,
                           const std::string& merge_attribute,
                           const ItemSet& candidates,
                           CostLedger* ledger) override;
  Result<Relation> Load(CostLedger* ledger) override;
  Result<Relation> FetchRecords(const std::string& merge_attribute,
                                const ItemSet& items,
                                CostLedger* ledger) override;

  size_t calls_attempted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_attempted_;
  }
  size_t calls_failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_failed_;
  }

 private:
  /// Returns non-OK (and meters the wasted round trip) when this call is
  /// chosen to fail — transiently (failure_code), or permanently while
  /// inside the outage window (outage_code). Also applies the injected
  /// latency. Operations not matching `target_operation` pass untouched.
  Status MaybeFail(const char* operation, CostLedger* ledger);

  std::unique_ptr<SourceWrapper> inner_;
  Options options_;
  mutable std::mutex mu_;  // guards rng_ and the counters
  Rng rng_;
  size_t calls_attempted_ = 0;
  size_t calls_failed_ = 0;
};

}  // namespace fusion

#endif  // FUSION_SOURCE_FLAKY_SOURCE_H_
