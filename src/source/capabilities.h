#ifndef FUSION_SOURCE_CAPABILITIES_H_
#define FUSION_SOURCE_CAPABILITIES_H_

#include <string>

namespace fusion {

/// How a source can process semijoin queries (Section 2.3 of the paper).
enum class SemijoinSupport {
  /// The wrapper accepts sjq(c, R, X) directly: one round trip, the whole
  /// semijoin set shipped in one message.
  kNative,
  /// The source only evaluates selections of the form `c AND M = m` for a
  /// passed binding m; the mediator emulates sjq with |X| selection queries.
  kPassedBindingsOnly,
  /// The source cannot restrict on M at all; semijoins are impossible
  /// (infinite cost — never chosen by any optimizer).
  kUnsupported,
};

const char* SemijoinSupportName(SemijoinSupport s);

/// What operations a source's wrapper exports.
struct Capabilities {
  SemijoinSupport semijoin = SemijoinSupport::kNative;
  /// Whether lq(R) — loading the entire source — is offered.
  bool supports_load = true;

  std::string ToString() const;
};

/// Cost parameters of talking to one source across the (simulated) network.
/// All costs are in abstract "cost units"; the paper's model only requires
/// they be non-negative and additive per source query.
struct NetworkProfile {
  /// Fixed cost per query message round trip (latency + per-request work).
  double query_overhead = 10.0;
  /// Cost per item shipped mediator -> source (semijoin sets, bindings).
  double cost_per_item_sent = 1.0;
  /// Cost per item shipped source -> mediator (answer sets).
  double cost_per_item_received = 1.0;
  /// Source-side per-tuple scan cost for evaluating one query.
  double processing_per_tuple = 0.01;
  /// lq(R) ships whole records, not just items; per-tuple multiplier on
  /// cost_per_item_received reflecting record width.
  double record_width_factor = 4.0;

  std::string ToString() const;
};

}  // namespace fusion

#endif  // FUSION_SOURCE_CAPABILITIES_H_
