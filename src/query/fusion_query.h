#ifndef FUSION_QUERY_FUSION_QUERY_H_
#define FUSION_QUERY_FUSION_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/condition.h"
#include "relational/schema.h"

namespace fusion {

/// A fusion query (Section 2.2 of the paper):
///
///   SELECT u1.M FROM U u1, ..., U um
///   WHERE u1.M = ... = um.M AND c1 AND ... AND cm
///
/// i.e. retrieve the merge-attribute values of entities that satisfy each of
/// `m` single-variable conditions, where each condition may be satisfied at
/// any source. The query object stores only what planning needs: the merge
/// attribute name and the ordered list of conditions.
class FusionQuery {
 public:
  FusionQuery() = default;
  FusionQuery(std::string merge_attribute, std::vector<Condition> conditions)
      : merge_attribute_(std::move(merge_attribute)),
        conditions_(std::move(conditions)) {}

  const std::string& merge_attribute() const { return merge_attribute_; }
  const std::vector<Condition>& conditions() const { return conditions_; }
  size_t num_conditions() const { return conditions_.size(); }

  /// Checks the query is well-formed against the common source schema:
  /// merge attribute exists, at least one condition, and every condition
  /// references only schema attributes.
  Status Validate(const Schema& schema) const;

  /// Returns the query with every condition in canonical simplified form
  /// (see Condition::Simplified). The mediator canonicalizes before
  /// planning: canonical condition text maximizes source-call cache hits,
  /// and contradictory conditions collapse to FALSE.
  FusionQuery Canonicalized() const;

  /// Renders the query back in the paper's SQL form.
  std::string ToSql() const;

  /// One-line summary: "fusion(M; c1, c2, ...)".
  std::string ToString() const;

 private:
  std::string merge_attribute_;
  std::vector<Condition> conditions_;
};

}  // namespace fusion

#endif  // FUSION_QUERY_FUSION_QUERY_H_
