#ifndef FUSION_QUERY_PARSER_H_
#define FUSION_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/fusion_query.h"

namespace fusion {

/// Parses a fusion query written in the paper's SQL form, e.g.:
///
///   SELECT u1.L FROM U u1, U u2
///   WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'
///
/// Requirements checked:
///  - exactly one selected column, of the form `<var>.<attr>`;
///  - FROM lists distinct tuple variables over the single union view `U`
///    (the relation name is not interpreted; any identifier is accepted);
///  - the WHERE clause is a top-level AND of (a) merge-equality clauses
///    `<var>.<attr> = <var>.<attr>` that link all variables into one
///    equivalence class on the selected attribute, and (b) single-variable
///    condition clauses (each clause's attribute references must all use one
///    tuple variable; `<var>.` prefixes are stripped before the condition
///    sub-parser runs).
///
/// Multiple condition clauses on the same variable are AND-ed into a single
/// condition c_i. Variables carrying no condition get the vacuous condition
/// TRUE (they only assert membership in U).
Result<FusionQuery> ParseFusionQuery(const std::string& sql);

}  // namespace fusion

#endif  // FUSION_QUERY_PARSER_H_
