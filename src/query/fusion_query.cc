#include "query/fusion_query.h"

#include "common/str_util.h"

namespace fusion {

Status FusionQuery::Validate(const Schema& schema) const {
  if (merge_attribute_.empty()) {
    return Status::InvalidArgument("fusion query has no merge attribute");
  }
  if (!schema.HasColumn(merge_attribute_)) {
    return Status::NotFound("merge attribute '" + merge_attribute_ +
                            "' not in schema " + schema.ToString());
  }
  if (conditions_.empty()) {
    return Status::InvalidArgument("fusion query has no conditions");
  }
  for (size_t i = 0; i < conditions_.size(); ++i) {
    const Status s = conditions_[i].Validate(schema);
    if (!s.ok()) {
      return Status(s.code(), StrFormat("condition c%zu: %s", i + 1,
                                        s.message().c_str()));
    }
  }
  return Status::Ok();
}

FusionQuery FusionQuery::Canonicalized() const {
  std::vector<Condition> simplified;
  simplified.reserve(conditions_.size());
  for (const Condition& c : conditions_) {
    simplified.push_back(c.Simplified());
  }
  return FusionQuery(merge_attribute_, std::move(simplified));
}

std::string FusionQuery::ToSql() const {
  const size_t m = conditions_.size();
  std::string sql = "SELECT u1." + merge_attribute_ + "\nFROM ";
  for (size_t i = 0; i < m; ++i) {
    if (i > 0) sql += ", ";
    sql += StrFormat("U u%zu", i + 1);
  }
  sql += "\nWHERE ";
  // Merge equalities, then each condition with its attributes qualified by
  // its tuple variable — exactly the clause shapes ParseFusionQuery accepts,
  // so ToSql() round-trips (this is how FusionQuery objects travel to a
  // fusionqd, which only speaks SQL text). A vacuous TRUE condition emits no
  // clause: the parser re-creates it for any variable left bare.
  std::vector<std::string> clauses;
  for (size_t i = 1; i < m; ++i) {
    clauses.push_back(StrFormat("u1.%s = u%zu.%s", merge_attribute_.c_str(),
                                i + 1, merge_attribute_.c_str()));
  }
  for (size_t i = 0; i < m; ++i) {
    if (conditions_[i].IsTrue()) continue;
    clauses.push_back(
        conditions_[i].ToStringPrefixed(StrFormat("u%zu.", i + 1)));
  }
  if (clauses.empty()) {
    // Single variable, vacuous condition: the parser still needs one clause.
    clauses.push_back(StrFormat("u1.%s = u1.%s", merge_attribute_.c_str(),
                                merge_attribute_.c_str()));
  }
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) sql += " AND ";
    sql += clauses[i];
  }
  return sql;
}

std::string FusionQuery::ToString() const {
  std::string out = "fusion(" + merge_attribute_ + "; ";
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (i > 0) out += ", ";
    out += conditions_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace fusion
