#include "query/parser.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <vector>

#include "common/str_util.h"
#include "relational/condition.h"

namespace fusion {
namespace {

/// Finds keyword `kw` at a word boundary outside string literals, case
/// insensitively. Returns npos if absent.
size_t FindKeyword(const std::string& text, const char* kw, size_t from = 0) {
  const size_t n = std::strlen(kw);
  bool in_string = false;
  for (size_t i = from; i + n <= text.size(); ++i) {
    const char c = text[i];
    if (c == '\'') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (!EqualsIgnoreCase(std::string_view(text).substr(i, n), kw)) continue;
    const bool left_ok =
        i == 0 || !(std::isalnum(static_cast<unsigned char>(text[i - 1])) ||
                    text[i - 1] == '_');
    const bool right_ok =
        i + n == text.size() ||
        !(std::isalnum(static_cast<unsigned char>(text[i + n])) ||
          text[i + n] == '_');
    if (left_ok && right_ok) return i;
  }
  return std::string::npos;
}

/// Splits `text` on top-level (paren depth 0, outside literals) ANDs.
std::vector<std::string> SplitTopLevelAnd(const std::string& text) {
  std::vector<std::string> clauses;
  int depth = 0;
  bool in_string = false;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\'') in_string = !in_string;
    if (in_string) continue;
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth == 0 && i + 3 <= text.size() &&
        EqualsIgnoreCase(std::string_view(text).substr(i, 3), "AND")) {
      const bool left_ok =
          i == 0 || !(std::isalnum(static_cast<unsigned char>(text[i - 1])) ||
                      text[i - 1] == '_');
      const bool right_ok =
          i + 3 == text.size() ||
          !(std::isalnum(static_cast<unsigned char>(text[i + 3])) ||
            text[i + 3] == '_');
      // Do not split the AND of a BETWEEN .. AND .. — detect by checking
      // whether the previous top-level keyword was BETWEEN with no AND yet.
      if (left_ok && right_ok) {
        const std::string prefix(StrTrim(text.substr(start, i - start)));
        const size_t between_pos = FindKeyword(prefix, "BETWEEN");
        if (between_pos != std::string::npos &&
            FindKeyword(prefix, "AND", between_pos) == std::string::npos) {
          continue;  // this AND belongs to a BETWEEN
        }
        clauses.emplace_back(prefix);
        start = i + 3;
        i += 2;
      }
    }
  }
  clauses.emplace_back(StrTrim(text.substr(start)));
  return clauses;
}

struct QualifiedRef {
  std::string variable;
  std::string attribute;
};

/// Scans a clause for `<ident>.<ident>` qualified references outside string
/// literals.
std::vector<QualifiedRef> FindQualifiedRefs(const std::string& clause) {
  std::vector<QualifiedRef> refs;
  bool in_string = false;
  size_t i = 0;
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < clause.size()) {
    const char c = clause[i];
    if (c == '\'') {
      in_string = !in_string;
      ++i;
      continue;
    }
    if (in_string || !is_ident(c) ||
        std::isdigit(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < clause.size() && is_ident(clause[j])) ++j;
    if (j < clause.size() && clause[j] == '.' && j + 1 < clause.size() &&
        is_ident(clause[j + 1]) &&
        !std::isdigit(static_cast<unsigned char>(clause[j + 1]))) {
      size_t k = j + 1;
      while (k < clause.size() && is_ident(clause[k])) ++k;
      refs.push_back(
          {clause.substr(i, j - i), clause.substr(j + 1, k - j - 1)});
      i = k;
    } else {
      i = j;
    }
  }
  return refs;
}

/// Replaces every `<var>.<attr>` with bare `<attr>` (outside literals).
std::string StripVariablePrefixes(const std::string& clause) {
  std::string out;
  bool in_string = false;
  size_t i = 0;
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < clause.size()) {
    const char c = clause[i];
    if (c == '\'') {
      in_string = !in_string;
      out += c;
      ++i;
      continue;
    }
    if (in_string || !is_ident(c) ||
        std::isdigit(static_cast<unsigned char>(c))) {
      out += c;
      ++i;
      continue;
    }
    size_t j = i;
    while (j < clause.size() && is_ident(clause[j])) ++j;
    if (j < clause.size() && clause[j] == '.' && j + 1 < clause.size() &&
        is_ident(clause[j + 1]) &&
        !std::isdigit(static_cast<unsigned char>(clause[j + 1]))) {
      i = j + 1;  // drop "<var>."
    } else {
      out.append(clause, i, j - i);
      i = j;
    }
  }
  return out;
}

/// True if `clause` is exactly `<var>.<attr> = <var>.<attr>`.
bool IsMergeEquality(const std::string& clause, QualifiedRef* lhs,
                     QualifiedRef* rhs) {
  const std::vector<QualifiedRef> refs = FindQualifiedRefs(clause);
  if (refs.size() != 2) return false;
  // Rebuild the expected text modulo whitespace.
  std::string squished;
  for (char c : clause) {
    if (!std::isspace(static_cast<unsigned char>(c))) squished += c;
  }
  const std::string expected = refs[0].variable + "." + refs[0].attribute +
                               "=" + refs[1].variable + "." +
                               refs[1].attribute;
  if (squished != expected) return false;
  *lhs = refs[0];
  *rhs = refs[1];
  return true;
}

/// Union-find over variable names.
class VarUnion {
 public:
  void Add(const std::string& v) { parent_.emplace(v, v); }
  bool Has(const std::string& v) const { return parent_.count(v) > 0; }

  std::string Find(const std::string& v) {
    std::string root = v;
    while (parent_[root] != root) root = parent_[root];
    // Path compression.
    std::string cur = v;
    while (parent_[cur] != root) {
      std::string next = parent_[cur];
      parent_[cur] = root;
      cur = next;
    }
    return root;
  }

  void Merge(const std::string& a, const std::string& b) {
    parent_[Find(a)] = Find(b);
  }

  bool AllConnected() {
    if (parent_.empty()) return true;
    const std::string root = Find(parent_.begin()->first);
    for (const auto& [v, _] : parent_) {
      if (Find(v) != root) return false;
    }
    return true;
  }

 private:
  std::map<std::string, std::string> parent_;
};

}  // namespace

Result<FusionQuery> ParseFusionQuery(const std::string& sql) {
  const size_t select_pos = FindKeyword(sql, "SELECT");
  const size_t from_pos = FindKeyword(sql, "FROM");
  const size_t where_pos = FindKeyword(sql, "WHERE");
  if (select_pos == std::string::npos || from_pos == std::string::npos ||
      where_pos == std::string::npos || !(select_pos < from_pos) ||
      !(from_pos < where_pos)) {
    return Status::ParseError(
        "expected SELECT ... FROM ... WHERE ... structure");
  }

  // --- SELECT list: exactly one `<var>.<attr>`.
  const std::string select_list(
      StrTrim(sql.substr(select_pos + 6, from_pos - select_pos - 6)));
  const std::vector<QualifiedRef> sel_refs = FindQualifiedRefs(select_list);
  {
    std::string squished;
    for (char c : select_list) {
      if (!std::isspace(static_cast<unsigned char>(c))) squished += c;
    }
    if (sel_refs.size() != 1 ||
        squished != sel_refs[0].variable + "." + sel_refs[0].attribute) {
      return Status::ParseError(
          "SELECT list must be a single qualified column like u1.M, got: " +
          select_list);
    }
  }
  const std::string merge_attr = sel_refs[0].attribute;

  // --- FROM list: `<rel> <var>` pairs.
  const std::string from_list(
      StrTrim(sql.substr(from_pos + 4, where_pos - from_pos - 4)));
  std::vector<std::string> variables;  // in declaration order
  VarUnion uf;
  for (const std::string& entry : StrSplit(from_list, ',')) {
    const std::string item(StrTrim(entry));
    if (item.empty()) return Status::ParseError("empty FROM entry");
    std::vector<std::string> words;
    for (const std::string& w : StrSplit(item, ' ')) {
      if (!std::string(StrTrim(w)).empty()) {
        words.emplace_back(StrTrim(w));
      }
    }
    if (words.size() != 2) {
      return Status::ParseError("FROM entries must be '<relation> <var>': " +
                                item);
    }
    const std::string& var = words[1];
    if (uf.Has(var)) {
      return Status::ParseError("duplicate tuple variable: " + var);
    }
    variables.push_back(var);
    uf.Add(var);
  }
  if (variables.empty()) return Status::ParseError("empty FROM clause");

  // --- WHERE clause.
  const std::string where(StrTrim(sql.substr(where_pos + 5)));
  std::map<std::string, Condition> per_var_condition;
  size_t merge_equalities = 0;
  for (const std::string& clause : SplitTopLevelAnd(where)) {
    if (clause.empty()) return Status::ParseError("empty WHERE clause");
    QualifiedRef lhs, rhs;
    if (IsMergeEquality(clause, &lhs, &rhs)) {
      if (lhs.attribute != merge_attr || rhs.attribute != merge_attr) {
        return Status::ParseError(
            "merge equality must use the selected attribute '" + merge_attr +
            "': " + clause);
      }
      if (!uf.Has(lhs.variable) || !uf.Has(rhs.variable)) {
        return Status::ParseError("unknown variable in: " + clause);
      }
      uf.Merge(lhs.variable, rhs.variable);
      ++merge_equalities;
      continue;
    }
    // Condition clause: all qualified refs must use one variable.
    const std::vector<QualifiedRef> refs = FindQualifiedRefs(clause);
    if (refs.empty()) {
      return Status::ParseError(
          "condition clause has no variable-qualified attribute (write "
          "u1.V = 'dui', not V = 'dui'): " +
          clause);
    }
    const std::string& var = refs[0].variable;
    for (const QualifiedRef& r : refs) {
      if (r.variable != var) {
        return Status::ParseError(
            "a fusion condition must reference a single tuple variable, "
            "found both " +
            var + " and " + r.variable + " in: " + clause);
      }
    }
    if (!uf.Has(var)) {
      return Status::ParseError("unknown tuple variable '" + var +
                                "' in: " + clause);
    }
    FUSION_ASSIGN_OR_RETURN(Condition cond,
                            ParseCondition(StripVariablePrefixes(clause)));
    auto it = per_var_condition.find(var);
    if (it == per_var_condition.end()) {
      per_var_condition.emplace(var, std::move(cond));
    } else {
      it->second = Condition::And(it->second, std::move(cond));
    }
  }

  if (variables.size() > 1 && !uf.AllConnected()) {
    return Status::ParseError(
        "merge-equality clauses do not link all tuple variables on '" +
        merge_attr + "'");
  }
  if (variables.size() > 1 && merge_equalities == 0) {
    return Status::ParseError("missing merge-equality clauses");
  }

  std::vector<Condition> conditions;
  for (const std::string& var : variables) {
    auto it = per_var_condition.find(var);
    conditions.push_back(it == per_var_condition.end() ? Condition::True()
                                                       : it->second);
  }
  if (conditions.empty()) {
    return Status::ParseError("no conditions in fusion query");
  }
  return FusionQuery(merge_attr, std::move(conditions));
}

}  // namespace fusion
