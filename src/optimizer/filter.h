#ifndef FUSION_OPTIMIZER_FILTER_H_
#define FUSION_OPTIMIZER_FILTER_H_

#include "optimizer/optimizer.h"

namespace fusion {

/// The FILTER algorithm (Section 3): the best filter plan pushes each of the
/// m conditions to each of the n sources as a selection query and combines
/// the mn answers locally. No search is needed — every filter plan issues
/// the same queries, so they all cost the same under the paper's model.
/// Runs in O(mn).
Result<OptimizedPlan> OptimizeFilter(const CostModel& model);

}  // namespace fusion

#endif  // FUSION_OPTIMIZER_FILTER_H_
