#include "optimizer/sja_rt.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/str_util.h"
#include "plan/response_time.h"

namespace fusion {

Result<OptimizedPlan> OptimizeSjaResponseTime(const CostModel& model) {
  const size_t m = model.num_conditions();
  const size_t n = model.num_sources();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("sja-rt: need conditions and sources");
  }
  if (m > kMaxConditionsForExhaustive) {
    return Status::InvalidArgument(StrFormat(
        "sja-rt: %zu conditions exceeds the exhaustive-ordering limit %zu",
        m, kMaxConditionsForExhaustive));
  }

  OptimizerRunSpan run_span("SJA-RT");
  std::vector<size_t> ordering(m);
  std::iota(ordering.begin(), ordering.end(), 0);

  double best_rt = std::numeric_limits<double>::infinity();
  ConditionOrderPlan best_structure;

  do {
    run_span.CountPlan();
    ConditionOrderPlan structure = MakeStructure(ordering, n);
    SetEstimate x = CanonicalRoundResult(model, ordering[0], nullptr);
    // Greedy finish-time simulation.
    std::vector<double> busy(n, 0.0);
    double x_ready = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double finish = busy[j] + model.SqCost(ordering[0], j);
      busy[j] = finish;
      x_ready = std::max(x_ready, finish);
    }
    for (size_t i = 1; i < m; ++i) {
      const size_t cond = ordering[i];
      double next_ready = 0.0;
      for (size_t j = 0; j < n; ++j) {
        const double sq_finish = busy[j] + model.SqCost(cond, j);
        const double sjq_finish =
            std::max(busy[j], x_ready) + model.SjqCost(cond, j, x);
        double finish = sq_finish;
        if (sjq_finish < sq_finish) {
          structure.use_semijoin[i][j] = true;
          finish = sjq_finish;
        }
        busy[j] = finish;
        next_ready = std::max(next_ready, finish);
      }
      x_ready = next_ready;
      x = CanonicalRoundResult(model, cond, &x);
    }

    // Exact rescoring of the materialized candidate.
    auto built = BuildStructuredPlan(model, structure, /*loaded=*/{},
                                     /*use_difference=*/false);
    if (!built.ok()) return built.status();
    auto rt = EstimateResponseTime(built->plan, model);
    if (!rt.ok()) return rt.status();
    if (rt->response_time < best_rt) {
      best_rt = rt->response_time;
      best_structure = std::move(structure);
    }
  } while (std::next_permutation(ordering.begin(), ordering.end()));

  FUSION_ASSIGN_OR_RETURN(
      StructuredBuildResult built,
      BuildStructuredPlan(model, best_structure, /*loaded=*/{},
                          /*use_difference=*/false));
  OptimizedPlan out;
  out.plan = std::move(built.plan);
  out.estimated_cost = best_rt;  // response time, not total work
  out.algorithm = "SJA-RT";
  out.plan_class = ClassifyPlan(out.plan);
  out.structure = std::move(best_structure);
  return out;
}

}  // namespace fusion
