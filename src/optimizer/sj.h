#ifndef FUSION_OPTIMIZER_SJ_H_
#define FUSION_OPTIMIZER_SJ_H_

#include "optimizer/optimizer.h"

namespace fusion {

/// The SJ algorithm (Figure 3): enumerates every ordering of the m
/// conditions; for each ordering, evaluates the first condition by selection
/// queries and then, condition by condition, compares the total cost of n
/// selection queries against the total cost of n semijoin queries on
/// X_{i-1}, taking the cheaper *uniformly across sources*. Returns the best
/// semijoin plan found. O(m! · m · n); refuses m > kMaxConditionsForExhaustive.
Result<OptimizedPlan> OptimizeSj(const CostModel& model);

}  // namespace fusion

#endif  // FUSION_OPTIMIZER_SJ_H_
