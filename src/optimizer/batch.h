#ifndef FUSION_OPTIMIZER_BATCH_H_
#define FUSION_OPTIMIZER_BATCH_H_

#include <vector>

#include "optimizer/optimizer.h"
#include "optimizer/postopt.h"
#include "query/fusion_query.h"

namespace fusion {

/// Joint optimization of a batch of fusion queries against one federation.
///
/// Mediators rarely see one query in isolation: investigation sessions ask
/// families of related fusion queries (dui∧sp, dui∧reckless, ...) whose
/// conditions overlap. A selection result fetched for one query can be
/// reused by every later query in the batch (the runtime SourceCallCache
/// makes the reuse real — see exec/source_call_cache.h), so the batch
/// optimizer plans queries sequentially under a *discounted* cost model in
/// which selections already owned by earlier plans are free. Queries are
/// greedily sequenced to maximize reuse (the query with the cheapest
/// marginal plan goes next).
///
/// This extends Section 5's observation that resolution-based systems need
/// common-subexpression elimination: here CSE spans whole queries.
struct BatchPlan {
  /// One plan per input query, in the input order.
  std::vector<OptimizedPlan> plans;
  /// Execution order chosen by the greedy sequencer (indices into `plans`).
  std::vector<size_t> order;
  /// Estimated total cost with cross-query reuse.
  double estimated_total = 0.0;
  /// Estimated total if each query were planned and paid independently.
  double estimated_independent = 0.0;
  /// Number of (condition, source) selections shared with an earlier query.
  size_t shared_selections = 0;
};

/// Plans `queries[i]` with SJA (+ optional postoptimization) under
/// `models[i]`, with cross-query selection reuse. All models must be over
/// the same catalog (same source count and indexing). Condition identity is
/// textual — canonicalize queries first (FusionQuery::Canonicalized) for
/// maximal sharing.
Result<BatchPlan> OptimizeBatch(const std::vector<const CostModel*>& models,
                                const std::vector<FusionQuery>& queries,
                                const PostOptOptions* postopt = nullptr);

}  // namespace fusion

#endif  // FUSION_OPTIMIZER_BATCH_H_
