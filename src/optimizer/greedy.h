#ifndef FUSION_OPTIMIZER_GREEDY_H_
#define FUSION_OPTIMIZER_GREEDY_H_

#include "optimizer/optimizer.h"

namespace fusion {

/// How the greedy optimizers pick the condition ordering without enumerating
/// all m! permutations (the extended version [24] of the paper describes
/// O(mn) greedy variants of SJ/SJA; the TR is unavailable, so these are our
/// documented reconstructions — see DESIGN.md §3).
enum class GreedyOrderHeuristic {
  /// Static: process conditions by increasing estimated global result size
  /// |∪_j sq(c_i, R_j)| (most selective first), computed once. O(mn + m log m)
  /// ordering cost; the per-source decisions then cost O(mn).
  kBySelectivity,
  /// Adaptive: at each step pick the unprocessed condition whose evaluation
  /// (per-source best of sq/sjq given the current X estimate) is cheapest.
  /// O(m²n) — still polynomial, no factorial.
  kByMinCost,
};

const char* GreedyOrderHeuristicName(GreedyOrderHeuristic h);

/// Greedy SJA: one ordering chosen by `heuristic`, then SJA's independent
/// per-source sq/sjq decisions along it.
Result<OptimizedPlan> OptimizeGreedySja(const CostModel& model,
                                        GreedyOrderHeuristic heuristic);

/// Greedy SJ: same orderings, but the per-condition decision is uniform
/// across sources as in SJ.
Result<OptimizedPlan> OptimizeGreedySj(const CostModel& model,
                                       GreedyOrderHeuristic heuristic);

}  // namespace fusion

#endif  // FUSION_OPTIMIZER_GREEDY_H_
