#include "optimizer/filter.h"

#include <numeric>

namespace fusion {

Result<OptimizedPlan> OptimizeFilter(const CostModel& model) {
  const size_t m = model.num_conditions();
  const size_t n = model.num_sources();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("filter: need conditions and sources");
  }
  OptimizerRunSpan run_span("FILTER");
  run_span.CountPlan();  // every filter plan is cost-equivalent; one suffices
  std::vector<size_t> ordering(m);
  std::iota(ordering.begin(), ordering.end(), 0);
  const ConditionOrderPlan structure = MakeStructure(std::move(ordering), n);
  FUSION_ASSIGN_OR_RETURN(
      StructuredBuildResult built,
      BuildStructuredPlan(model, structure, /*loaded=*/{},
                          /*use_difference=*/false));
  OptimizedPlan out;
  out.plan = std::move(built.plan);
  out.estimated_cost = built.total_cost;
  out.algorithm = "FILTER";
  out.plan_class = ClassifyPlan(out.plan);
  out.structure = structure;
  return out;
}

}  // namespace fusion
