#ifndef FUSION_OPTIMIZER_OPTIMIZER_H_
#define FUSION_OPTIMIZER_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "obs/trace.h"
#include "plan/classifier.h"
#include "plan/plan.h"

namespace fusion {

/// RAII observability for one optimizer algorithm run: an `optimize` span
/// covering the search, carrying how many candidate plans (orderings,
/// greedy candidate evaluations, postopt variants) were considered, which
/// also feeds the optimizer_plans_considered counter. Counting happens
/// whether or not tracing is enabled.
class OptimizerRunSpan {
 public:
  explicit OptimizerRunSpan(const char* algorithm);
  ~OptimizerRunSpan();

  OptimizerRunSpan(const OptimizerRunSpan&) = delete;
  OptimizerRunSpan& operator=(const OptimizerRunSpan&) = delete;

  void CountPlan(size_t n = 1) { plans_considered_ += n; }

 private:
  ScopedSpan span_;
  size_t plans_considered_ = 0;
};

/// The structure of a condition-at-a-time plan: the order in which conditions
/// are processed and, for every non-first condition and every source, whether
/// that (condition, source) pair is evaluated by a semijoin query (true) or a
/// selection query (false). This is the search space of SJ (uniform rows) and
/// SJA (free rows); SJA+ reuses it as the skeleton it postoptimizes.
struct ConditionOrderPlan {
  /// ordering[i] = original index of the condition processed i-th.
  std::vector<size_t> ordering;
  /// use_semijoin[i][j]: evaluate condition ordering[i] at source j by sjq.
  /// Row 0 is all-false by construction (the first condition is always
  /// evaluated by selection queries).
  std::vector<std::vector<bool>> use_semijoin;
};

/// An optimizer's output: the plan, the estimated cost under the model it
/// was given, its class, and (for condition-at-a-time algorithms) the
/// structure that produced it.
struct OptimizedPlan {
  Plan plan;
  double estimated_cost = 0.0;
  std::string algorithm;
  PlanClass plan_class = PlanClass::kFilter;
  ConditionOrderPlan structure;  // empty for FILTER / baseline plans
};

/// Limits on the exhaustive-ordering algorithms. SJ/SJA enumerate all m!
/// orderings; beyond `max_conditions_for_exhaustive` they refuse (use the
/// greedy variants instead).
inline constexpr size_t kMaxConditionsForExhaustive = 9;

/// Materializes a ConditionOrderPlan into an executable Plan (paper-style
/// variable names) and computes its estimated cost and per-source query cost
/// totals under `model`.
///
/// `loaded[j]` (optional, may be empty = none) marks sources replaced by an
/// upfront lq + free local selection (SJA+ loading). `use_difference`
/// enables semijoin-set pruning with set difference (SJA+): within each
/// round, free/local and selection results arrive first, then semijoin
/// queries run sequentially, each shipping only the candidates not yet
/// confirmed for this round's condition.
struct StructuredBuildResult {
  Plan plan;
  double total_cost = 0.0;
  /// Estimated cost attributable to each source's queries (lq included).
  std::vector<double> per_source_cost;
  SetEstimate result;
};

Result<StructuredBuildResult> BuildStructuredPlan(
    const CostModel& model, const ConditionOrderPlan& structure,
    const std::vector<bool>& loaded, bool use_difference,
    bool order_semijoins_by_yield = false);

/// Convenience: all-false decision matrix rows for a given ordering size.
ConditionOrderPlan MakeStructure(std::vector<size_t> ordering, size_t num_sources);

/// The decision-independent estimate of the round result
/// X_i = X_{i-1} ∩ (∪_j sq-result(cond, R_j)) — pass `prev = nullptr` for the
/// first round (no intersection). This canonical form is what the searches
/// and the structured builder all propagate: the true X_i does not depend on
/// whether a source was asked by sq or sjq, and keeping the estimate
/// decision-independent is what makes SJA's per-source choices globally
/// optimal under scalar (independence) estimation too.
SetEstimate CanonicalRoundResult(const CostModel& model, size_t cond,
                                 const SetEstimate* prev);

}  // namespace fusion

#endif  // FUSION_OPTIMIZER_OPTIMIZER_H_
