#include "optimizer/spj_baseline.h"

#include <cmath>
#include <map>
#include <vector>

#include "common/str_util.h"
#include "plan/cost_estimator.h"

namespace fusion {
namespace {

/// Recursively expands all source assignments, building (and, with CSE,
/// sharing) the left-deep chains. `chain_var` is the variable holding the
/// result of the prefix; depth counts conditions already bound.
void ExpandChains(size_t depth, size_t m, size_t n, int chain_var, Plan& plan,
                  std::map<std::pair<size_t, size_t>, int>* sq_memo,
                  std::map<std::pair<int, size_t>, int>* sjq_memo,
                  std::vector<int>& finals) {
  if (depth == m) {
    finals.push_back(chain_var);
    return;
  }
  for (size_t j = 0; j < n; ++j) {
    int next = -1;
    if (depth == 0) {
      if (sq_memo != nullptr) {
        auto it = sq_memo->find({depth, j});
        if (it != sq_memo->end()) next = it->second;
      }
      if (next < 0) {
        next = plan.EmitSelect(static_cast<int>(depth), static_cast<int>(j),
                               StrFormat("S%zu_%zu", depth + 1, j + 1));
        if (sq_memo != nullptr) (*sq_memo)[{depth, j}] = next;
      }
    } else {
      if (sjq_memo != nullptr) {
        auto it = sjq_memo->find({chain_var, j});
        if (it != sjq_memo->end()) next = it->second;
      }
      if (next < 0) {
        next = plan.EmitSemiJoin(static_cast<int>(depth), static_cast<int>(j),
                                 chain_var,
                                 StrFormat("J%zu_%zu", depth + 1, j + 1));
        if (sjq_memo != nullptr) (*sjq_memo)[{chain_var, j}] = next;
      }
    }
    ExpandChains(depth + 1, m, n, next, plan, sq_memo, sjq_memo, finals);
  }
}

}  // namespace

Result<OptimizedPlan> SpjUnionBaseline(const CostModel& model,
                                       bool eliminate_common_subexpressions,
                                       size_t max_subqueries) {
  const size_t m = model.num_conditions();
  const size_t n = model.num_sources();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("spj baseline: need conditions and sources");
  }
  const double combos = std::pow(static_cast<double>(n),
                                 static_cast<double>(m));
  if (combos > static_cast<double>(max_subqueries)) {
    return Status::InvalidArgument(StrFormat(
        "spj baseline: n^m = %.3g SPJ subqueries exceeds limit %zu — this "
        "blow-up is the failure mode the paper describes",
        combos, max_subqueries));
  }

  Plan plan;
  std::vector<int> finals;
  if (eliminate_common_subexpressions) {
    // CSE: share sq results and identical left-deep chain prefixes.
    std::map<std::pair<size_t, size_t>, int> sq_memo;
    std::map<std::pair<int, size_t>, int> sjq_memo;
    ExpandChains(0, m, n, /*chain_var=*/-1, plan, &sq_memo, &sjq_memo,
                 finals);
  } else {
    // No CSE: every one of the n^m SPJ subqueries re-issues its full chain
    // of m source queries, exactly as independent subplans would.
    std::vector<size_t> combo(m, 0);
    while (true) {
      int chain = plan.EmitSelect(0, static_cast<int>(combo[0]));
      for (size_t d = 1; d < m; ++d) {
        chain = plan.EmitSemiJoin(static_cast<int>(d),
                                  static_cast<int>(combo[d]), chain);
      }
      finals.push_back(chain);
      // Next combo (odometer).
      size_t d = 0;
      while (d < m && ++combo[d] == n) {
        combo[d] = 0;
        ++d;
      }
      if (d == m) break;
    }
  }
  const int answer =
      finals.size() == 1 ? finals[0] : plan.EmitUnion(finals, "ANSWER");
  plan.SetResult(answer);

  FUSION_ASSIGN_OR_RETURN(PlanCostBreakdown breakdown,
                          EstimatePlanCost(plan, model));
  OptimizedPlan out;
  out.plan = std::move(plan);
  out.estimated_cost = breakdown.total;
  out.algorithm = eliminate_common_subexpressions ? "SPJ-UNION+CSE"
                                                  : "SPJ-UNION";
  out.plan_class = ClassifyPlan(out.plan);
  return out;
}

}  // namespace fusion
