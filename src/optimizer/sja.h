#ifndef FUSION_OPTIMIZER_SJA_H_
#define FUSION_OPTIMIZER_SJA_H_

#include "optimizer/optimizer.h"

namespace fusion {

/// The SJA algorithm (Figure 4): like SJ it enumerates all m! condition
/// orderings, but inside each round it decides *independently per source*
/// whether to evaluate the condition by a selection query or a semijoin
/// query — the "source loop". This finds the optimal semijoin-adaptive plan
/// (a space of O(m!·2^{n(m-2)}) plans) in O(m!·m·n) time, because per-source
/// choices are independent given X_{i-1} under the additive cost model.
/// Refuses m > kMaxConditionsForExhaustive (use the greedy variants).
Result<OptimizedPlan> OptimizeSja(const CostModel& model);

}  // namespace fusion

#endif  // FUSION_OPTIMIZER_SJA_H_
