#ifndef FUSION_OPTIMIZER_BRUTE_FORCE_H_
#define FUSION_OPTIMIZER_BRUTE_FORCE_H_

#include "optimizer/optimizer.h"

namespace fusion {

/// What a brute-force search minimizes.
enum class PlanObjective {
  kTotalWork,     // the paper's objective: sum of source-query costs
  kResponseTime,  // parallel makespan (critical path); see plan/response_time
};

/// Exhaustively enumerates every semijoin-adaptive plan — all m! orderings ×
/// all 2^{n(m-1)} per-(condition,source) decision matrices — scoring each via
/// the same structured builder used everywhere. Exponential in n·m; exists
/// purely to verify that SJA's per-source local decisions are globally
/// optimal on small instances (the claim behind Figure 4's "source loop"),
/// and to measure the optimality gap of the SJA-RT heuristic under the
/// response-time objective. Fails if the space exceeds `max_plans`.
Result<OptimizedPlan> BruteForceSemijoinAdaptive(
    const CostModel& model, size_t max_plans = 1 << 20,
    PlanObjective objective = PlanObjective::kTotalWork);

/// Same, restricted to semijoin plans (uniform per-condition decisions,
/// 2^{m-1} matrices per ordering); validates SJ.
Result<OptimizedPlan> BruteForceSemijoin(
    const CostModel& model, size_t max_plans = 1 << 20,
    PlanObjective objective = PlanObjective::kTotalWork);

}  // namespace fusion

#endif  // FUSION_OPTIMIZER_BRUTE_FORCE_H_
