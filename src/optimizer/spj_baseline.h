#ifndef FUSION_OPTIMIZER_SPJ_BASELINE_H_
#define FUSION_OPTIMIZER_SPJ_BASELINE_H_

#include "optimizer/optimizer.h"

namespace fusion {

/// The Section-5 "distribute the join over the union" baseline, as practiced
/// by resolution-based mediators (Information Manifold, TSIMMIS, HERMES,
/// Infomaster): the fusion query expands into n^m SPJ subqueries — one per
/// assignment of sources to conditions — each planned as a left-deep
/// semijoin program sq(c1,R_{j1}) → sjq(c2,R_{j2}) → ..., and the answer is
/// the union of the subquery results.
///
/// `eliminate_common_subexpressions` memoizes shared chain prefixes (the
/// expensive CSE pass the paper says such systems would need); without it
/// every subquery re-issues its whole chain. Fails when n^m exceeds
/// `max_subqueries` — which is precisely the paper's point.
Result<OptimizedPlan> SpjUnionBaseline(const CostModel& model,
                                       bool eliminate_common_subexpressions,
                                       size_t max_subqueries = 100000);

}  // namespace fusion

#endif  // FUSION_OPTIMIZER_SPJ_BASELINE_H_
