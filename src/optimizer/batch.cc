#include "optimizer/batch.h"

#include <limits>
#include <set>
#include <string>
#include <utility>

#include "optimizer/postopt.h"
#include "optimizer/sja.h"

namespace fusion {
namespace {

/// A (condition text, source index) selection already owned by some earlier
/// plan in the batch.
using OwnedSelections = std::set<std::pair<std::string, size_t>>;

/// Wraps a per-query cost model, making selections that an earlier query in
/// the batch already issued free (the runtime cache answers them without a
/// source call). Everything else delegates.
class DiscountedCostModel : public CostModel {
 public:
  DiscountedCostModel(const CostModel& base,
                      std::vector<std::string> condition_texts,
                      const OwnedSelections& owned)
      : base_(base),
        condition_texts_(std::move(condition_texts)),
        owned_(owned) {}

  size_t num_conditions() const override { return base_.num_conditions(); }
  size_t num_sources() const override { return base_.num_sources(); }
  double universe_size() const override { return base_.universe_size(); }

  double SqCost(size_t cond, size_t source) const override {
    if (owned_.count({condition_texts_[cond], source}) > 0) return 0.0;
    return base_.SqCost(cond, source);
  }
  double SjqCost(size_t cond, size_t source,
                 const SetEstimate& x) const override {
    return base_.SjqCost(cond, source, x);
  }
  double LqCost(size_t source) const override { return base_.LqCost(source); }
  SetEstimate SqResult(size_t cond, size_t source) const override {
    return base_.SqResult(cond, source);
  }
  SetEstimate SjqResult(size_t cond, size_t source,
                        const SetEstimate& x) const override {
    return base_.SjqResult(cond, source, x);
  }
  double FetchCost(size_t source, double item_count) const override {
    return base_.FetchCost(source, item_count);
  }

 private:
  const CostModel& base_;
  std::vector<std::string> condition_texts_;
  const OwnedSelections& owned_;
};

std::vector<std::string> ConditionTexts(const FusionQuery& query) {
  std::vector<std::string> out;
  out.reserve(query.num_conditions());
  for (const Condition& c : query.conditions()) {
    out.push_back(c.ToString());
  }
  return out;
}

}  // namespace

Result<BatchPlan> OptimizeBatch(const std::vector<const CostModel*>& models,
                                const std::vector<FusionQuery>& queries,
                                const PostOptOptions* postopt) {
  if (models.size() != queries.size() || models.empty()) {
    return Status::InvalidArgument("batch needs matching models and queries");
  }
  const size_t n_sources = models[0]->num_sources();
  for (const CostModel* m : models) {
    if (m->num_sources() != n_sources) {
      return Status::InvalidArgument(
          "batch models must describe one catalog");
    }
  }

  BatchPlan batch;
  batch.plans.resize(queries.size());

  // Independent baseline for comparison.
  for (size_t i = 0; i < queries.size(); ++i) {
    FUSION_ASSIGN_OR_RETURN(const OptimizedPlan solo, OptimizeSja(*models[i]));
    batch.estimated_independent += solo.estimated_cost;
  }

  OwnedSelections owned;
  std::vector<bool> planned(queries.size(), false);
  for (size_t step = 0; step < queries.size(); ++step) {
    // Greedy sequencing: next is the unplanned query with the cheapest
    // marginal (discounted) plan.
    size_t best = queries.size();
    double best_cost = std::numeric_limits<double>::infinity();
    OptimizedPlan best_plan;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (planned[i]) continue;
      const DiscountedCostModel discounted(*models[i],
                                           ConditionTexts(queries[i]), owned);
      Result<OptimizedPlan> candidate =
          postopt != nullptr ? OptimizeSjaPlus(discounted, *postopt)
                             : OptimizeSja(discounted);
      if (!candidate.ok()) return candidate.status();
      if (candidate->estimated_cost < best_cost) {
        best_cost = candidate->estimated_cost;
        best = i;
        best_plan = std::move(candidate).value();
      }
    }
    planned[best] = true;
    batch.order.push_back(best);
    batch.estimated_total += best_cost;

    // Selections this plan issues become free for the rest of the batch.
    const std::vector<std::string> texts = ConditionTexts(queries[best]);
    for (const PlanOp& op : best_plan.plan.ops()) {
      if (op.kind != PlanOpKind::kSelect) continue;
      const auto key = std::make_pair(texts[static_cast<size_t>(op.cond)],
                                      static_cast<size_t>(op.source));
      if (!owned.insert(key).second) {
        ++batch.shared_selections;
      }
    }
    batch.plans[best] = std::move(best_plan);
  }

  // Count shared selections properly: a selection is "shared" when a later
  // plan uses a pair an earlier plan owned. Recompute by replaying order.
  batch.shared_selections = 0;
  OwnedSelections replay;
  for (size_t idx : batch.order) {
    const std::vector<std::string> texts = ConditionTexts(queries[idx]);
    for (const PlanOp& op : batch.plans[idx].plan.ops()) {
      if (op.kind != PlanOpKind::kSelect) continue;
      const auto key = std::make_pair(texts[static_cast<size_t>(op.cond)],
                                      static_cast<size_t>(op.source));
      if (!replay.insert(key).second) ++batch.shared_selections;
    }
  }
  return batch;
}

}  // namespace fusion
