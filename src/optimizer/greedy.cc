#include "optimizer/greedy.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace fusion {
namespace {

/// Estimated |∪_j sq(c_i, R_j)| for each condition.
std::vector<double> GlobalResultSizes(const CostModel& model) {
  const size_t m = model.num_conditions();
  const size_t n = model.num_sources();
  std::vector<double> out(m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    SetEstimate u;
    bool first = true;
    for (size_t j = 0; j < n; ++j) {
      const SetEstimate r = model.SqResult(i, j);
      u = first ? r : UnionEstimate(u, r, model.universe_size());
      first = false;
    }
    out[i] = u.size;
  }
  return out;
}

/// Runs one round of per-source decisions for `cond` given X_{i-1}.
/// Appends decisions to `row`, adds cost, and updates `x` (canonical,
/// decision-independent propagation). `adaptive` selects SJA-style
/// independent choices; otherwise the SJ uniform rule. `first_round` forces
/// selections and skips the intersection.
double EvaluateRound(const CostModel& model, size_t cond, bool adaptive,
                     bool first_round, SetEstimate& x,
                     std::vector<bool>* row) {
  const size_t n = model.num_sources();
  double cost = 0.0;
  if (first_round) {
    for (size_t j = 0; j < n; ++j) cost += model.SqCost(cond, j);
    x = CanonicalRoundResult(model, cond, nullptr);
    return cost;
  }
  if (!adaptive) {
    double sel = 0.0, sjq = 0.0;
    for (size_t j = 0; j < n; ++j) {
      sel += model.SqCost(cond, j);
      sjq += model.SjqCost(cond, j, x);
    }
    const bool use_sjq = !(sel < sjq);
    if (row != nullptr) {
      for (size_t j = 0; j < n; ++j) (*row)[j] = use_sjq;
    }
    x = CanonicalRoundResult(model, cond, &x);
    return use_sjq ? sjq : sel;
  }
  for (size_t j = 0; j < n; ++j) {
    const double sq_cost = model.SqCost(cond, j);
    const double sjq_cost = model.SjqCost(cond, j, x);
    if (sq_cost < sjq_cost) {
      cost += sq_cost;
    } else {
      if (row != nullptr) (*row)[j] = true;
      cost += sjq_cost;
    }
  }
  x = CanonicalRoundResult(model, cond, &x);
  return cost;
}

Result<OptimizedPlan> OptimizeGreedy(const CostModel& model,
                                     GreedyOrderHeuristic heuristic,
                                     bool adaptive) {
  const size_t m = model.num_conditions();
  const size_t n = model.num_sources();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("greedy: need conditions and sources");
  }
  OptimizerRunSpan run_span(adaptive ? "SJA-G" : "SJ-G");

  std::vector<size_t> ordering;
  ordering.reserve(m);

  if (heuristic == GreedyOrderHeuristic::kBySelectivity) {
    const std::vector<double> sizes = GlobalResultSizes(model);
    std::vector<size_t> idx(m);
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return sizes[a] < sizes[b];
    });
    ordering = std::move(idx);
  } else {
    // Adaptive min-cost greedy: repeatedly take the cheapest next condition.
    std::vector<bool> used(m, false);
    SetEstimate x;
    for (size_t step = 0; step < m; ++step) {
      size_t best = m;
      double best_cost = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < m; ++i) {
        if (used[i]) continue;
        run_span.CountPlan();  // each candidate extension is one consideration
        SetEstimate x_copy = x;
        const double c = EvaluateRound(model, i, adaptive, step == 0, x_copy,
                                       /*row=*/nullptr);
        if (c < best_cost) {
          best_cost = c;
          best = i;
        }
      }
      used[best] = true;
      ordering.push_back(best);
      // Commit: update x along the chosen condition.
      EvaluateRound(model, best, adaptive, step == 0, x, /*row=*/nullptr);
    }
  }

  // Decisions along the chosen ordering.
  run_span.CountPlan();  // the committed ordering itself
  ConditionOrderPlan structure = MakeStructure(ordering, n);
  SetEstimate x;
  for (size_t i = 0; i < m; ++i) {
    std::vector<bool> row(n, false);
    EvaluateRound(model, ordering[i], adaptive, i == 0, x, &row);
    if (i > 0) {
      structure.use_semijoin[i].assign(row.begin(), row.end());
    }
  }

  FUSION_ASSIGN_OR_RETURN(
      StructuredBuildResult built,
      BuildStructuredPlan(model, structure, /*loaded=*/{},
                          /*use_difference=*/false));
  OptimizedPlan out;
  out.plan = std::move(built.plan);
  out.estimated_cost = built.total_cost;
  out.algorithm = std::string(adaptive ? "SJA-G-" : "SJ-G-") +
                  GreedyOrderHeuristicName(heuristic);
  out.plan_class = ClassifyPlan(out.plan);
  out.structure = std::move(structure);
  return out;
}

}  // namespace

const char* GreedyOrderHeuristicName(GreedyOrderHeuristic h) {
  switch (h) {
    case GreedyOrderHeuristic::kBySelectivity:
      return "sel";
    case GreedyOrderHeuristic::kByMinCost:
      return "mincost";
  }
  return "?";
}

Result<OptimizedPlan> OptimizeGreedySja(const CostModel& model,
                                        GreedyOrderHeuristic heuristic) {
  return OptimizeGreedy(model, heuristic, /*adaptive=*/true);
}

Result<OptimizedPlan> OptimizeGreedySj(const CostModel& model,
                                       GreedyOrderHeuristic heuristic) {
  return OptimizeGreedy(model, heuristic, /*adaptive=*/false);
}

}  // namespace fusion
