#include "optimizer/brute_force.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/str_util.h"
#include "plan/response_time.h"

namespace fusion {
namespace {

/// Scores one built candidate under the requested objective.
Result<double> ScorePlan(const StructuredBuildResult& built,
                         const CostModel& model, PlanObjective objective) {
  if (objective == PlanObjective::kTotalWork) return built.total_cost;
  FUSION_ASSIGN_OR_RETURN(ResponseTimeBreakdown rt,
                          EstimateResponseTime(built.plan, model));
  return rt.response_time;
}

/// Checks the candidate space size and enumerates decision matrices.
Result<OptimizedPlan> BruteForce(const CostModel& model, bool adaptive,
                                 size_t max_plans, PlanObjective objective) {
  const size_t m = model.num_conditions();
  const size_t n = model.num_sources();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("brute force: need conditions and sources");
  }
  // Space size: m! * 2^bits with bits = (m-1) * (adaptive ? n : 1).
  const size_t bits = (m - 1) * (adaptive ? n : 1);
  if (bits > 30) {
    return Status::InvalidArgument("brute force: decision space too large");
  }
  double space = 1.0;
  for (size_t i = 2; i <= m; ++i) space *= static_cast<double>(i);
  space *= static_cast<double>(size_t{1} << bits);
  if (space > static_cast<double>(max_plans)) {
    return Status::InvalidArgument(
        StrFormat("brute force: %.3g candidate plans exceeds limit %zu",
                  space, max_plans));
  }

  std::vector<size_t> ordering(m);
  std::iota(ordering.begin(), ordering.end(), 0);

  double best_cost = std::numeric_limits<double>::infinity();
  ConditionOrderPlan best_structure;
  bool found = false;

  do {
    for (size_t mask = 0; mask < (size_t{1} << bits); ++mask) {
      ConditionOrderPlan structure = MakeStructure(ordering, n);
      size_t bit = 0;
      for (size_t i = 1; i < m; ++i) {
        if (adaptive) {
          for (size_t j = 0; j < n; ++j) {
            structure.use_semijoin[i][j] = (mask >> bit) & 1;
            ++bit;
          }
        } else {
          const bool use = (mask >> bit) & 1;
          ++bit;
          for (size_t j = 0; j < n; ++j) structure.use_semijoin[i][j] = use;
        }
      }
      auto built = BuildStructuredPlan(model, structure, /*loaded=*/{},
                                       /*use_difference=*/false);
      if (!built.ok()) return built.status();
      FUSION_ASSIGN_OR_RETURN(const double score,
                              ScorePlan(*built, model, objective));
      if (score < best_cost) {
        best_cost = score;
        best_structure = std::move(structure);
        found = true;
      }
    }
  } while (std::next_permutation(ordering.begin(), ordering.end()));

  if (!found) return Status::Internal("brute force found no plan");
  FUSION_ASSIGN_OR_RETURN(
      StructuredBuildResult built,
      BuildStructuredPlan(model, best_structure, /*loaded=*/{},
                          /*use_difference=*/false));
  OptimizedPlan out;
  out.plan = std::move(built.plan);
  out.estimated_cost = best_cost;
  out.algorithm = adaptive ? "BRUTE-SJA" : "BRUTE-SJ";
  out.plan_class = ClassifyPlan(out.plan);
  out.structure = std::move(best_structure);
  return out;
}

}  // namespace

Result<OptimizedPlan> BruteForceSemijoinAdaptive(const CostModel& model,
                                                 size_t max_plans,
                                                 PlanObjective objective) {
  return BruteForce(model, /*adaptive=*/true, max_plans, objective);
}

Result<OptimizedPlan> BruteForceSemijoin(const CostModel& model,
                                         size_t max_plans,
                                         PlanObjective objective) {
  return BruteForce(model, /*adaptive=*/false, max_plans, objective);
}

}  // namespace fusion
