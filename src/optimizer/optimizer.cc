#include "optimizer/optimizer.h"

#include <algorithm>

#include "common/str_util.h"
#include "obs/metrics.h"

namespace fusion {

OptimizerRunSpan::OptimizerRunSpan(const char* algorithm)
    : span_(SpanCategory::kOptimize, algorithm) {}

OptimizerRunSpan::~OptimizerRunSpan() {
  span_.AddAttr("plans_considered", plans_considered_);
  static Counter& considered = MetricsRegistry::Global().counter(
      metrics::kOptimizerPlansConsidered);
  considered.Increment(plans_considered_);
}

ConditionOrderPlan MakeStructure(std::vector<size_t> ordering,
                                 size_t num_sources) {
  ConditionOrderPlan out;
  out.use_semijoin.assign(ordering.size(),
                          std::vector<bool>(num_sources, false));
  out.ordering = std::move(ordering);
  return out;
}

SetEstimate CanonicalRoundResult(const CostModel& model, size_t cond,
                                 const SetEstimate* prev) {
  SetEstimate u;
  bool first = true;
  for (size_t j = 0; j < model.num_sources(); ++j) {
    const SetEstimate r = model.SqResult(cond, j);
    u = first ? r : UnionEstimate(u, r, model.universe_size());
    first = false;
  }
  if (prev == nullptr) return u;
  return IntersectEstimate(*prev, u, model.universe_size());
}

Result<StructuredBuildResult> BuildStructuredPlan(
    const CostModel& model, const ConditionOrderPlan& structure,
    const std::vector<bool>& loaded, bool use_difference,
    bool order_semijoins_by_yield) {
  const size_t m = structure.ordering.size();
  const size_t n = model.num_sources();
  if (m == 0) return Status::InvalidArgument("empty condition ordering");
  if (m != model.num_conditions()) {
    return Status::InvalidArgument(
        StrFormat("ordering covers %zu conditions, model has %zu", m,
                  model.num_conditions()));
  }
  if (structure.use_semijoin.size() != m) {
    return Status::InvalidArgument("decision matrix has wrong row count");
  }
  for (const auto& row : structure.use_semijoin) {
    if (row.size() != n) {
      return Status::InvalidArgument("decision matrix has wrong column count");
    }
  }
  {
    std::vector<bool> seen(m, false);
    for (size_t c : structure.ordering) {
      if (c >= m || seen[c]) {
        return Status::InvalidArgument("ordering is not a permutation");
      }
      seen[c] = true;
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (structure.use_semijoin[0][j]) {
      return Status::InvalidArgument(
          "first condition must be evaluated by selection queries");
    }
  }
  const std::vector<bool> no_loads(n, false);
  const std::vector<bool>& is_loaded = loaded.empty() ? no_loads : loaded;
  if (is_loaded.size() != n) {
    return Status::InvalidArgument("loaded mask has wrong size");
  }

  Plan plan;
  StructuredBuildResult out;
  out.per_source_cost.assign(n, 0.0);
  auto charge = [&](size_t source, double cost) {
    out.total_cost += cost;
    out.per_source_cost[source] += cost;
  };

  // Load ops come first (SJA+ loading): Y_j := lq(R_j).
  std::vector<int> loaded_var(n, -1);
  for (size_t j = 0; j < n; ++j) {
    if (is_loaded[j]) {
      loaded_var[j] =
          plan.EmitLoad(static_cast<int>(j), StrFormat("Y%zu", j + 1));
      charge(j, model.LqCost(j));
    }
  }

  int prev = -1;         // variable holding X_{i-1}
  SetEstimate x;         // canonical estimate of X_{i-1}
  for (size_t i = 0; i < m; ++i) {
    const size_t cond = structure.ordering[i];
    const int cond_id = static_cast<int>(cond);
    std::vector<int> immediate;  // results available without shipping X
    std::vector<SetEstimate> immediate_est;
    std::vector<size_t> sjq_sources;
    for (size_t j = 0; j < n; ++j) {
      if (is_loaded[j]) {
        immediate.push_back(plan.EmitLocalSelect(
            cond_id, loaded_var[j], StrFormat("X%zu%zu", i + 1, j + 1)));
        immediate_est.push_back(model.SqResult(cond, j));  // free
      } else if (i > 0 && structure.use_semijoin[i][j]) {
        sjq_sources.push_back(j);
      } else {
        immediate.push_back(plan.EmitSelect(
            cond_id, static_cast<int>(j), StrFormat("X%zu%zu", i + 1, j + 1)));
        immediate_est.push_back(model.SqResult(cond, j));
        charge(j, model.SqCost(cond, j));
      }
    }

    int round_var = -1;
    if (i == 0) {
      // X_1 := union of all first-round results.
      round_var = immediate.size() == 1
                      ? immediate[0]
                      : plan.EmitUnion(immediate, StrFormat("X%zu", i + 1));
    } else if (!use_difference || sjq_sources.empty()) {
      // Standard SJA shape: per-source results, then
      // X_i := X_{i-1} ∩ (∪_j X_ij); pure-semijoin rounds skip the
      // intersection because every result is already a subset of X_{i-1}.
      std::vector<int> results = immediate;
      for (size_t j : sjq_sources) {
        results.push_back(
            plan.EmitSemiJoin(cond_id, static_cast<int>(j), prev,
                              StrFormat("X%zu%zu", i + 1, j + 1)));
        charge(j, model.SjqCost(cond, j, x));
      }
      if (immediate.empty()) {
        round_var = results.size() == 1
                        ? results[0]
                        : plan.EmitUnion(results, StrFormat("X%zu", i + 1));
      } else {
        const int u = results.size() == 1
                          ? results[0]
                          : plan.EmitUnion(results, StrFormat("U%zu", i + 1));
        round_var = plan.EmitIntersect({prev, u}, StrFormat("X%zu", i + 1));
      }
    } else {
      // SJA+ difference pruning: confirmed items need not be re-shipped.
      if (order_semijoins_by_yield && sjq_sources.size() > 1) {
        // Query high-yield sources first so later semijoins ship less
        // (an extension beyond the paper's index-order pruning; the
        // bench_postopt ablation quantifies it).
        std::stable_sort(sjq_sources.begin(), sjq_sources.end(),
                         [&](size_t a, size_t b) {
                           return model.SjqResult(cond, a, x).size >
                                  model.SjqResult(cond, b, x).size;
                         });
      }
      std::vector<int> parts;
      int pending = prev;
      SetEstimate pending_est = x;
      if (!immediate.empty()) {
        SetEstimate u_imm = immediate_est[0];
        for (size_t k = 1; k < immediate_est.size(); ++k) {
          u_imm = UnionEstimate(u_imm, immediate_est[k],
                                model.universe_size());
        }
        const int u = immediate.size() == 1
                          ? immediate[0]
                          : plan.EmitUnion(immediate, StrFormat("U%zu", i + 1));
        const int confirmed =
            plan.EmitIntersect({prev, u}, StrFormat("C%zu", i + 1));
        parts.push_back(confirmed);
        const SetEstimate confirmed_est =
            IntersectEstimate(x, u_imm, model.universe_size());
        pending = plan.EmitDifference(prev, confirmed,
                                      StrFormat("P%zu", i + 1));
        pending_est =
            DifferenceEstimate(x, confirmed_est, model.universe_size());
      }
      for (size_t k = 0; k < sjq_sources.size(); ++k) {
        const size_t j = sjq_sources[k];
        const int y =
            plan.EmitSemiJoin(cond_id, static_cast<int>(j), pending,
                              StrFormat("X%zu%zu", i + 1, j + 1));
        charge(j, model.SjqCost(cond, j, pending_est));
        parts.push_back(y);
        if (k + 1 < sjq_sources.size()) {
          const SetEstimate y_est = model.SjqResult(cond, j, pending_est);
          pending = plan.EmitDifference(pending, y,
                                        StrFormat("P%zu_%zu", i + 1, k + 2));
          pending_est =
              DifferenceEstimate(pending_est, y_est, model.universe_size());
        }
      }
      // Every part is a subset of X_{i-1}; their union is X_i.
      round_var = parts.size() == 1
                      ? parts[0]
                      : plan.EmitUnion(parts, StrFormat("X%zu", i + 1));
    }
    prev = round_var;
    // Canonical (decision-independent) estimate of X_i: the true semantics
    // is X_i = X_{i-1} ∩ (∪_j items satisfying c at R_j) no matter how each
    // source was queried. Using this canonical form keeps per-source sq/sjq
    // choices independent of one another under scalar estimation, which is
    // what makes SJA's source loop optimal (verified against brute force).
    x = CanonicalRoundResult(model, cond, i == 0 ? nullptr : &x);
  }
  plan.SetResult(prev);
  FUSION_RETURN_IF_ERROR(plan.Validate(m, n));

  out.result = std::move(x);
  out.plan = std::move(plan);
  return out;
}

}  // namespace fusion
