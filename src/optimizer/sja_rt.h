#ifndef FUSION_OPTIMIZER_SJA_RT_H_
#define FUSION_OPTIMIZER_SJA_RT_H_

#include "optimizer/optimizer.h"

namespace fusion {

/// Response-time-oriented SJA (the paper's conclusion names minimizing
/// response time under parallel execution as future work; this is our
/// realization of it). Searches the same space as SJA — all m! orderings ×
/// per-source sq/sjq decisions — but scores candidates by the parallel
/// makespan (critical path) instead of total work.
///
/// Unlike total work, per-source decisions are *not* independent under the
/// makespan objective (a slow semijoin chain serializes), so inside each
/// round we use a greedy finish-time rule: each source takes whichever of
/// sq/sjq completes earlier given when X_{i-1} becomes available and when
/// the source frees up. The winning ordering is then re-scored exactly with
/// the critical-path analyzer; the result is a strong heuristic, optimal on
/// most instances (bench_response_time quantifies the gap against the
/// RT brute force).
///
/// `estimated_cost` of the returned plan is the estimated *response time*.
Result<OptimizedPlan> OptimizeSjaResponseTime(const CostModel& model);

}  // namespace fusion

#endif  // FUSION_OPTIMIZER_SJA_RT_H_
