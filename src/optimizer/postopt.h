#ifndef FUSION_OPTIMIZER_POSTOPT_H_
#define FUSION_OPTIMIZER_POSTOPT_H_

#include "optimizer/optimizer.h"

namespace fusion {

/// Which Section-4 postoptimization techniques SJA+ applies. Both default
/// on; benches toggle them individually for the ablation study.
struct PostOptOptions {
  /// Prune semijoin sets with set difference: within each round, results
  /// already confirmed for the round's condition (by local evaluation or
  /// selection queries, or by earlier semijoin queries in the round) are not
  /// re-shipped to later semijoin sources.
  bool use_difference = true;
  /// Replace all queries to a source by one lq + free local evaluation when
  /// the load is estimated cheaper than the source's combined query cost.
  bool use_loading = true;
  /// Extension beyond the paper (in the spirit of [24]'s further
  /// postoptimizations): within a difference-pruned round, query the
  /// semijoin sources in descending expected-yield order so later sources
  /// receive maximally pruned sets. Off by default to keep SJA+ faithful to
  /// Section 4; bench_postopt ablates it.
  bool order_semijoins_by_yield = false;
};

/// The SJA+ algorithm (Section 4.1): run SJA for the best semijoin-adaptive
/// plan, then apply difference pruning to every semijoin round and finally
/// consider loading entire sources. O(m!·m·n + mn); the produced plan is
/// generally outside the space of simple plans.
Result<OptimizedPlan> OptimizeSjaPlus(const CostModel& model,
                                      const PostOptOptions& options = {});

/// Applies the same postoptimization to an existing condition-at-a-time
/// structure (e.g. a greedy SJA result), so greedy + postopt composes.
Result<OptimizedPlan> PostOptimizeStructure(const CostModel& model,
                                            const ConditionOrderPlan& structure,
                                            const PostOptOptions& options,
                                            const std::string& base_algorithm);

}  // namespace fusion

#endif  // FUSION_OPTIMIZER_POSTOPT_H_
