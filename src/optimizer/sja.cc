#include "optimizer/sja.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/str_util.h"

namespace fusion {

Result<OptimizedPlan> OptimizeSja(const CostModel& model) {
  const size_t m = model.num_conditions();
  const size_t n = model.num_sources();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("sja: need conditions and sources");
  }
  if (m > kMaxConditionsForExhaustive) {
    return Status::InvalidArgument(StrFormat(
        "sja: %zu conditions exceeds the exhaustive-ordering limit %zu; use "
        "the greedy optimizer",
        m, kMaxConditionsForExhaustive));
  }

  OptimizerRunSpan run_span("SJA");
  std::vector<size_t> ordering(m);
  std::iota(ordering.begin(), ordering.end(), 0);

  double best_cost = std::numeric_limits<double>::infinity();
  ConditionOrderPlan best_structure;

  do {  // loop A of Figure 4
    run_span.CountPlan();
    ConditionOrderPlan structure = MakeStructure(ordering, n);
    double plan_cost = 0.0;
    for (size_t j = 0; j < n; ++j) plan_cost += model.SqCost(ordering[0], j);
    SetEstimate x = CanonicalRoundResult(model, ordering[0], nullptr);
    for (size_t i = 1; i < m && plan_cost < best_cost; ++i) {  // loop B
      const size_t cond = ordering[i];
      // Source loop: independent per-source choice. Because the round result
      // X_i does not depend on these choices, picking the per-source minimum
      // is globally optimal for this ordering.
      for (size_t j = 0; j < n; ++j) {
        const double sq_cost = model.SqCost(cond, j);
        const double sjq_cost = model.SjqCost(cond, j, x);
        if (sq_cost < sjq_cost) {
          plan_cost += sq_cost;
        } else {
          structure.use_semijoin[i][j] = true;
          plan_cost += sjq_cost;
        }
      }
      x = CanonicalRoundResult(model, cond, &x);
    }
    if (plan_cost < best_cost) {
      best_cost = plan_cost;
      best_structure = std::move(structure);
    }
  } while (std::next_permutation(ordering.begin(), ordering.end()));

  FUSION_ASSIGN_OR_RETURN(
      StructuredBuildResult built,
      BuildStructuredPlan(model, best_structure, /*loaded=*/{},
                          /*use_difference=*/false));
  OptimizedPlan out;
  out.plan = std::move(built.plan);
  out.estimated_cost = built.total_cost;
  out.algorithm = "SJA";
  out.plan_class = ClassifyPlan(out.plan);
  out.structure = std::move(best_structure);
  return out;
}

}  // namespace fusion
