#include "optimizer/postopt.h"

#include "optimizer/sja.h"

namespace fusion {

Result<OptimizedPlan> PostOptimizeStructure(
    const CostModel& model, const ConditionOrderPlan& structure,
    const PostOptOptions& options, const std::string& base_algorithm) {
  const size_t n = model.num_sources();
  OptimizerRunSpan run_span("POSTOPT");
  run_span.CountPlan();

  // Pass 1: difference-pruned (or plain) plan, no loading, to get per-source
  // query cost totals.
  FUSION_ASSIGN_OR_RETURN(
      StructuredBuildResult base,
      BuildStructuredPlan(model, structure, /*loaded=*/{},
                          options.use_difference,
                          options.order_semijoins_by_yield));

  std::vector<bool> loaded(n, false);
  bool any_loaded = false;
  if (options.use_loading) {
    for (size_t j = 0; j < n; ++j) {
      const double lq = model.LqCost(j);
      if (lq < base.per_source_cost[j]) {
        loaded[j] = true;
        any_loaded = true;
      }
    }
  }

  StructuredBuildResult final_result = std::move(base);
  if (any_loaded) {
    run_span.CountPlan();  // the loading variant is a second candidate
    FUSION_ASSIGN_OR_RETURN(
        final_result,
        BuildStructuredPlan(model, structure, loaded,
                            options.use_difference,
                            options.order_semijoins_by_yield));
  }

  OptimizedPlan out;
  out.plan = std::move(final_result.plan);
  out.estimated_cost = final_result.total_cost;
  out.algorithm = base_algorithm + "+";
  out.plan_class = ClassifyPlan(out.plan);
  out.structure = structure;
  return out;
}

Result<OptimizedPlan> OptimizeSjaPlus(const CostModel& model,
                                      const PostOptOptions& options) {
  FUSION_ASSIGN_OR_RETURN(OptimizedPlan sja, OptimizeSja(model));
  FUSION_ASSIGN_OR_RETURN(
      OptimizedPlan plus,
      PostOptimizeStructure(model, sja.structure, options, "SJA"));
  // Postoptimization must never hurt: difference pruning only shrinks
  // semijoin inputs and loading is adopted only when estimated cheaper. If
  // estimation quirks make the postoptimized plan pricier, keep the SJA plan.
  if (plus.estimated_cost <= sja.estimated_cost) return plus;
  sja.algorithm = "SJA+(kept-SJA)";
  return sja;
}

}  // namespace fusion
