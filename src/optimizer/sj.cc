#include "optimizer/sj.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/str_util.h"

namespace fusion {

Result<OptimizedPlan> OptimizeSj(const CostModel& model) {
  const size_t m = model.num_conditions();
  const size_t n = model.num_sources();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("sj: need conditions and sources");
  }
  if (m > kMaxConditionsForExhaustive) {
    return Status::InvalidArgument(StrFormat(
        "sj: %zu conditions exceeds the exhaustive-ordering limit %zu; use "
        "the greedy optimizer",
        m, kMaxConditionsForExhaustive));
  }

  OptimizerRunSpan run_span("SJ");
  std::vector<size_t> ordering(m);
  std::iota(ordering.begin(), ordering.end(), 0);

  double best_cost = std::numeric_limits<double>::infinity();
  ConditionOrderPlan best_structure;

  do {  // loop A of Figure 3
    run_span.CountPlan();
    ConditionOrderPlan structure = MakeStructure(ordering, n);
    // First condition: selection queries at every source.
    double plan_cost = 0.0;
    for (size_t j = 0; j < n; ++j) plan_cost += model.SqCost(ordering[0], j);
    SetEstimate x = CanonicalRoundResult(model, ordering[0], nullptr);
    for (size_t i = 1; i < m && plan_cost < best_cost; ++i) {  // loop B
      const size_t cond = ordering[i];
      double selection_queries_cost = 0.0;
      double semijoin_queries_cost = 0.0;
      for (size_t j = 0; j < n; ++j) {
        selection_queries_cost += model.SqCost(cond, j);
        semijoin_queries_cost += model.SjqCost(cond, j, x);
      }
      if (selection_queries_cost < semijoin_queries_cost) {
        plan_cost += selection_queries_cost;
      } else {
        for (size_t j = 0; j < n; ++j) structure.use_semijoin[i][j] = true;
        plan_cost += semijoin_queries_cost;
      }
      x = CanonicalRoundResult(model, cond, &x);
    }
    if (plan_cost < best_cost) {
      best_cost = plan_cost;
      best_structure = std::move(structure);
    }
  } while (std::next_permutation(ordering.begin(), ordering.end()));

  FUSION_ASSIGN_OR_RETURN(
      StructuredBuildResult built,
      BuildStructuredPlan(model, best_structure, /*loaded=*/{},
                          /*use_difference=*/false));
  OptimizedPlan out;
  out.plan = std::move(built.plan);
  out.estimated_cost = built.total_cost;
  out.algorithm = "SJ";
  out.plan_class = ClassifyPlan(out.plan);
  out.structure = std::move(best_structure);
  return out;
}

}  // namespace fusion
