#include "relational/column_index.h"

namespace fusion {

Result<ColumnIndex> ColumnIndex::Build(const Relation& relation,
                                       const std::string& column) {
  FUSION_ASSIGN_OR_RETURN(const size_t idx, relation.schema().IndexOf(column));
  ColumnIndex out;
  out.column_ = column;
  out.rows_by_value_.reserve(relation.size());
  for (size_t row = 0; row < relation.size(); ++row) {
    const Value& v = relation.tuple(row)[idx];
    if (v.is_null()) continue;
    out.rows_by_value_[v].push_back(row);
  }
  return out;
}

const std::vector<size_t>* ColumnIndex::Rows(const Value& value) const {
  auto it = rows_by_value_.find(value);
  if (it == rows_by_value_.end()) return nullptr;
  return &it->second;
}

}  // namespace fusion
