#include "relational/relation.h"

#include <algorithm>
#include <cstdlib>

#include "common/str_util.h"

namespace fusion {

Relation::Relation(const Relation& other)
    : schema_(other.schema_), tuples_(other.tuples_) {
  // Share the immutable columnar snapshot (cheap) rather than rebuilding.
  std::lock_guard<std::mutex> lock(other.columnar_mu_);
  columnar_ = other.columnar_;
  columnar_failed_rows_ = other.columnar_failed_rows_;
}

Relation::Relation(Relation&& other) noexcept
    : schema_(std::move(other.schema_)), tuples_(std::move(other.tuples_)) {
  std::lock_guard<std::mutex> lock(other.columnar_mu_);
  columnar_ = std::move(other.columnar_);
  columnar_failed_rows_ = other.columnar_failed_rows_;
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  tuples_ = other.tuples_;
  std::shared_ptr<const ColumnarTable> snapshot;
  size_t failed_rows;
  {
    std::lock_guard<std::mutex> lock(other.columnar_mu_);
    snapshot = other.columnar_;
    failed_rows = other.columnar_failed_rows_;
  }
  std::lock_guard<std::mutex> lock(columnar_mu_);
  columnar_ = std::move(snapshot);
  columnar_failed_rows_ = failed_rows;
  return *this;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  tuples_ = std::move(other.tuples_);
  std::shared_ptr<const ColumnarTable> snapshot;
  size_t failed_rows;
  {
    std::lock_guard<std::mutex> lock(other.columnar_mu_);
    snapshot = std::move(other.columnar_);
    failed_rows = other.columnar_failed_rows_;
  }
  std::lock_guard<std::mutex> lock(columnar_mu_);
  columnar_ = std::move(snapshot);
  columnar_failed_rows_ = failed_rows;
  return *this;
}

Status Relation::Append(Tuple tuple) {
  FUSION_RETURN_IF_ERROR(ValidateTuple(schema_, tuple));
  tuples_.push_back(std::move(tuple));
  return Status::Ok();
}

std::shared_ptr<const ColumnarTable> Relation::GetOrBuildColumnar() const {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  if (columnar_ && columnar_->num_rows() == tuples_.size()) return columnar_;
  if (columnar_failed_rows_ == tuples_.size()) return nullptr;
  Result<ColumnarTable> built = ColumnarTable::FromRows(schema_, tuples_);
  if (!built.ok()) {
    columnar_failed_rows_ = tuples_.size();
    columnar_.reset();
    return nullptr;
  }
  columnar_ =
      std::make_shared<const ColumnarTable>(std::move(built).value());
  columnar_failed_rows_ = SIZE_MAX;
  return columnar_;
}

void Relation::WarmColumnar() const { GetOrBuildColumnar(); }

std::shared_ptr<const ColumnarTable> Relation::columnar() const {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  if (columnar_ && columnar_->num_rows() == tuples_.size()) return columnar_;
  return nullptr;
}

Result<Relation> Relation::Select(const Condition& cond,
                                  EvalPath path) const {
  FUSION_RETURN_IF_ERROR(cond.Validate(schema_));
  if (UseColumnar(path)) {
    if (std::shared_ptr<const ColumnarTable> table = GetOrBuildColumnar()) {
      SelectionBitmap keep(table->num_rows());
      FUSION_RETURN_IF_ERROR(cond.EvaluateBatch(*table, &keep));
      Relation out(schema_);
      out.tuples_.reserve(keep.CountSet());
      keep.ForEachSet([&](size_t r) { out.tuples_.push_back(tuples_[r]); });
      return out;
    }
  }
  Relation out(schema_);
  for (const Tuple& t : tuples_) {
    FUSION_ASSIGN_OR_RETURN(const bool keep, cond.Evaluate(schema_, t));
    if (keep) out.AppendUnchecked(t);
  }
  return out;
}

Result<ItemSet> Relation::SelectItems(const Condition& cond,
                                      const std::string& attribute,
                                      EvalPath path) const {
  FUSION_RETURN_IF_ERROR(cond.Validate(schema_));
  FUSION_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(attribute));
  if (UseColumnar(path)) {
    if (std::shared_ptr<const ColumnarTable> table = GetOrBuildColumnar()) {
      SelectionBitmap keep(table->num_rows());
      FUSION_RETURN_IF_ERROR(cond.EvaluateBatch(*table, &keep));
      const ColumnView col = table->column(idx);
      if (col.has_nulls()) keep.AndWith(col.column().valid);
      std::vector<Value> out;
      out.reserve(keep.CountSet());
      keep.ForEachSet([&](size_t r) { out.push_back(col.GetValue(r)); });
      return ItemSet(std::move(out));
    }
  }
  std::vector<Value> out;
  for (const Tuple& t : tuples_) {
    if (t[idx].is_null()) continue;
    FUSION_ASSIGN_OR_RETURN(const bool keep, cond.Evaluate(schema_, t));
    if (keep) out.push_back(t[idx]);
  }
  return ItemSet(std::move(out));
}

Result<ItemSet> Relation::SemiJoinItems(const Condition& cond,
                                        const std::string& attribute,
                                        const ItemSet& candidates,
                                        EvalPath path) const {
  FUSION_RETURN_IF_ERROR(cond.Validate(schema_));
  FUSION_ASSIGN_OR_RETURN(const size_t idx, schema_.IndexOf(attribute));
  if (UseColumnar(path)) {
    if (std::shared_ptr<const ColumnarTable> table = GetOrBuildColumnar()) {
      SelectionBitmap keep(table->num_rows());
      FUSION_RETURN_IF_ERROR(cond.EvaluateBatch(*table, &keep));
      const ColumnView col = table->column(idx);
      if (col.has_nulls()) keep.AndWith(col.column().valid);
      std::vector<Value> out;
      keep.ForEachSet([&](size_t r) {
        Value v = col.GetValue(r);
        if (candidates.Contains(v)) out.push_back(std::move(v));
      });
      return ItemSet(std::move(out));
    }
  }
  std::vector<Value> out;
  for (const Tuple& t : tuples_) {
    if (t[idx].is_null() || !candidates.Contains(t[idx])) continue;
    FUSION_ASSIGN_OR_RETURN(const bool keep, cond.Evaluate(schema_, t));
    if (keep) out.push_back(t[idx]);
  }
  return ItemSet(std::move(out));
}

Result<size_t> Relation::CountWhere(const Condition& cond,
                                    EvalPath path) const {
  FUSION_RETURN_IF_ERROR(cond.Validate(schema_));
  if (UseColumnar(path)) {
    if (std::shared_ptr<const ColumnarTable> table = GetOrBuildColumnar()) {
      SelectionBitmap keep(table->num_rows());
      FUSION_RETURN_IF_ERROR(cond.EvaluateBatch(*table, &keep));
      return keep.CountSet();
    }
  }
  size_t count = 0;
  for (const Tuple& t : tuples_) {
    FUSION_ASSIGN_OR_RETURN(const bool keep, cond.Evaluate(schema_, t));
    if (keep) ++count;
  }
  return count;
}

Result<Relation> Relation::Union(const Relation& a, const Relation& b) {
  if (a.schema() != b.schema()) {
    return Status::InvalidArgument("union of relations with different schemas: " +
                                   a.schema().ToString() + " vs " +
                                   b.schema().ToString());
  }
  Relation out(a.schema());
  for (const Tuple& t : a.tuples()) out.AppendUnchecked(t);
  for (const Tuple& t : b.tuples()) out.AppendUnchecked(t);
  return out;
}

Result<Relation> Relation::UnionAll(const std::vector<const Relation*>& rels) {
  if (rels.empty()) return Status::InvalidArgument("UnionAll of zero relations");
  Relation out(rels[0]->schema());
  for (const Relation* r : rels) {
    if (r->schema() != out.schema()) {
      return Status::InvalidArgument("UnionAll: schema mismatch");
    }
    for (const Tuple& t : r->tuples()) out.AppendUnchecked(t);
  }
  return out;
}

size_t Relation::ApproxBytes() const {
  size_t bytes = sizeof(Relation) + tuples_.capacity() * sizeof(Tuple);
  for (const Tuple& tuple : tuples_) {
    bytes += tuple.capacity() * sizeof(Value);
    for (const Value& v : tuple) {
      if (v.type() == ValueType::kString) bytes += v.str().capacity();
    }
  }
  // A built columnar mirror is resident memory too — byte-budgeted caches
  // must account for it (WarmColumnar before sizing makes this deterministic).
  if (std::shared_ptr<const ColumnarTable> table = columnar()) {
    bytes += table->ApproxBytes();
  }
  return bytes;
}

std::string Relation::ToString() const {
  // Compute column widths.
  std::vector<size_t> widths(schema_.num_columns());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  cells.reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    std::vector<std::string> row;
    row.reserve(t.size());
    for (size_t c = 0; c < t.size(); ++c) {
      row.push_back(t[c].ToString());
      widths[c] = std::max(widths[c], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::string out;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += StrFormat("%-*s ", static_cast<int>(widths[c]),
                     schema_.column(c).name.c_str());
  }
  out += "\n";
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += StrFormat("%-*s ", static_cast<int>(widths[c]), row[c].c_str());
    }
    out += "\n";
  }
  return out;
}

namespace {

std::string EscapeCsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Splits one CSV line honoring quoted fields.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

Result<ValueType> ParseTypeName(const std::string& name) {
  if (name == "int64") return ValueType::kInt64;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  return Status::ParseError("unknown column type: " + name);
}

Result<Value> ParseCsvValue(const std::string& field, ValueType type) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case ValueType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (end != field.c_str() + field.size()) {
        return Status::ParseError("bad int64 field: " + field);
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end != field.c_str() + field.size()) {
        return Status::ParseError("bad double field: " + field);
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(field);
    case ValueType::kNull:
      return Status::ParseError("null-typed column");
  }
  return Status::Internal("bad value type");
}

std::string CsvFieldOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(v.int64());
    case ValueType::kDouble: {
      return StrFormat("%.17g", v.dbl());
    }
    case ValueType::kString:
      return EscapeCsvField(v.str());
  }
  return "";
}

}  // namespace

std::string RelationToCsv(const Relation& relation) {
  std::string out;
  const Schema& schema = relation.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += EscapeCsvField(schema.column(c).name) + ":" +
           ValueTypeName(schema.column(c).type);
  }
  out += "\n";
  for (const Tuple& t : relation.tuples()) {
    for (size_t c = 0; c < t.size(); ++c) {
      if (c > 0) out += ",";
      out += CsvFieldOf(t[c]);
    }
    out += "\n";
  }
  return out;
}

Result<Relation> RelationFromCsv(const std::string& csv) {
  std::vector<std::string> lines = StrSplit(csv, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) return Status::ParseError("empty CSV");
  // Header.
  std::vector<ColumnDef> columns;
  for (const std::string& field : SplitCsvLine(lines[0])) {
    const size_t colon = field.rfind(':');
    if (colon == std::string::npos) {
      return Status::ParseError("header field missing ':type': " + field);
    }
    ColumnDef def;
    def.name = field.substr(0, colon);
    FUSION_ASSIGN_OR_RETURN(def.type, ParseTypeName(field.substr(colon + 1)));
    columns.push_back(std::move(def));
  }
  Relation out{Schema(std::move(columns))};
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> fields = SplitCsvLine(lines[i]);
    if (fields.size() != out.schema().num_columns()) {
      return Status::ParseError(
          StrFormat("line %zu has %zu fields, expected %zu", i + 1,
                    fields.size(), out.schema().num_columns()));
    }
    Tuple t;
    t.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      FUSION_ASSIGN_OR_RETURN(
          Value v, ParseCsvValue(fields[c], out.schema().column(c).type));
      t.push_back(std::move(v));
    }
    FUSION_RETURN_IF_ERROR(out.Append(std::move(t)));
  }
  return out;
}

}  // namespace fusion
