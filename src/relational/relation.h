#ifndef FUSION_RELATIONAL_RELATION_H_
#define FUSION_RELATIONAL_RELATION_H_

#include <string>
#include <vector>

#include "common/item_set.h"
#include "common/status.h"
#include "relational/condition.h"
#include "relational/schema.h"

namespace fusion {

/// An in-memory relation instance: a schema plus a bag of tuples. This is the
/// storage behind each simulated autonomous source `R_j`.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends a tuple after validating it against the schema.
  Status Append(Tuple tuple);

  /// Appends without validation; used by generators that construct tuples
  /// known to be well-typed (hot path for large synthetic instances).
  void AppendUnchecked(Tuple tuple) { tuples_.push_back(std::move(tuple)); }

  /// Returns the tuples satisfying `cond`.
  Result<Relation> Select(const Condition& cond) const;

  /// Distinct values of column `attribute` over tuples satisfying `cond`
  /// (NULLs excluded). This is the source-side work of sq(c_i, R_j).
  Result<ItemSet> SelectItems(const Condition& cond,
                              const std::string& attribute) const;

  /// Subset of `candidates` that appear (in column `attribute`) in some tuple
  /// satisfying `cond`. This is the source-side work of sjq(c_i, R_j, X).
  Result<ItemSet> SemiJoinItems(const Condition& cond,
                                const std::string& attribute,
                                const ItemSet& candidates) const;

  /// Number of tuples satisfying `cond` (used by oracle statistics).
  Result<size_t> CountWhere(const Condition& cond) const;

  /// Bag union; requires identical schemas.
  static Result<Relation> Union(const Relation& a, const Relation& b);

  /// All tuples of all relations (requires identical schemas).
  static Result<Relation> UnionAll(const std::vector<const Relation*>& rels);

  /// Renders an aligned table for display.
  std::string ToString() const;

  /// Approximate resident size in bytes (tuple storage plus string
  /// payloads). Used by byte-budgeted caches holding loaded relations.
  size_t ApproxBytes() const;

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
};

/// Serializes a relation to CSV with a `name:type` header line.
std::string RelationToCsv(const Relation& relation);

/// Parses the format produced by RelationToCsv.
Result<Relation> RelationFromCsv(const std::string& csv);

}  // namespace fusion

#endif  // FUSION_RELATIONAL_RELATION_H_
