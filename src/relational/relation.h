#ifndef FUSION_RELATIONAL_RELATION_H_
#define FUSION_RELATIONAL_RELATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/item_set.h"
#include "common/status.h"
#include "relational/columnar.h"
#include "relational/condition.h"
#include "relational/schema.h"

namespace fusion {

/// Which condition evaluator a read-side scan uses. kAuto picks the columnar
/// batch path for relations large enough to amortize the (lazy, cached)
/// column-store build, and the row interpreter otherwise. kRow / kColumnar
/// force a path — tests use them to cross-check that both produce identical
/// answers.
enum class EvalPath { kAuto, kRow, kColumnar };

/// An in-memory relation instance: a schema plus a bag of tuples. This is the
/// storage behind each simulated autonomous source `R_j`.
///
/// The row store (`tuples_`) stays authoritative; a column-major mirror
/// (ColumnarTable) is built lazily on the first large enough scan and cached.
/// Appends do not invalidate eagerly — staleness is detected by row-count
/// comparison at use time, keeping AppendUnchecked a plain push_back. If the
/// build fails (hand-assembled ill-typed tuples), the failure is cached and
/// the relation permanently uses the row path, preserving legacy semantics.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  Relation(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(const Relation& other);
  Relation& operator=(Relation&& other) noexcept;

  const Schema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends a tuple after validating it against the schema.
  Status Append(Tuple tuple);

  /// Appends without validation; used by generators that construct tuples
  /// known to be well-typed (hot path for large synthetic instances).
  void AppendUnchecked(Tuple tuple) { tuples_.push_back(std::move(tuple)); }

  /// Returns the tuples satisfying `cond`.
  Result<Relation> Select(const Condition& cond,
                          EvalPath path = EvalPath::kAuto) const;

  /// Distinct values of column `attribute` over tuples satisfying `cond`
  /// (NULLs excluded). This is the source-side work of sq(c_i, R_j).
  Result<ItemSet> SelectItems(const Condition& cond,
                              const std::string& attribute,
                              EvalPath path = EvalPath::kAuto) const;

  /// Subset of `candidates` that appear (in column `attribute`) in some tuple
  /// satisfying `cond`. This is the source-side work of sjq(c_i, R_j, X).
  Result<ItemSet> SemiJoinItems(const Condition& cond,
                                const std::string& attribute,
                                const ItemSet& candidates,
                                EvalPath path = EvalPath::kAuto) const;

  /// Number of tuples satisfying `cond` (used by oracle statistics).
  Result<size_t> CountWhere(const Condition& cond,
                            EvalPath path = EvalPath::kAuto) const;

  /// Builds (or refreshes) the columnar mirror now. Long-lived relations —
  /// e.g. cache-resident loads — call this so later scans skip the lazy
  /// build and ApproxBytes reflects the true resident footprint up front.
  void WarmColumnar() const;

  /// The cached columnar mirror if built and current, else nullptr. Never
  /// triggers a build.
  std::shared_ptr<const ColumnarTable> columnar() const;

  /// Bag union; requires identical schemas.
  static Result<Relation> Union(const Relation& a, const Relation& b);

  /// All tuples of all relations (requires identical schemas).
  static Result<Relation> UnionAll(const std::vector<const Relation*>& rels);

  /// Renders an aligned table for display.
  std::string ToString() const;

  /// Approximate resident size in bytes (tuple storage plus string
  /// payloads). Used by byte-budgeted caches holding loaded relations.
  size_t ApproxBytes() const;

 private:
  /// Returns the columnar mirror, building it under `columnar_mu_` if absent
  /// or stale (row count moved since the build). Returns nullptr — and
  /// remembers the failure so it is not retried until the relation grows —
  /// when the rows cannot be columnarized (declared/runtime type mismatch).
  std::shared_ptr<const ColumnarTable> GetOrBuildColumnar() const;

  /// True when `path` resolves to the batch evaluator for this relation.
  bool UseColumnar(EvalPath path) const {
    return path == EvalPath::kColumnar ||
           (path == EvalPath::kAuto && tuples_.size() >= kColumnarMinRows);
  }

  /// kAuto threshold: below this the build cost dominates any batch win.
  static constexpr size_t kColumnarMinRows = 64;

  Schema schema_;
  std::vector<Tuple> tuples_;

  // Lazy columnar cache. The mutex only guards the cache slots, never the
  // row store; `columnar_failed_rows_` records the row count at which a
  // build failed so failures are cached too.
  mutable std::mutex columnar_mu_;
  mutable std::shared_ptr<const ColumnarTable> columnar_;
  mutable size_t columnar_failed_rows_ = SIZE_MAX;
};

/// Serializes a relation to CSV with a `name:type` header line.
std::string RelationToCsv(const Relation& relation);

/// Parses the format produced by RelationToCsv.
Result<Relation> RelationFromCsv(const std::string& csv);

}  // namespace fusion

#endif  // FUSION_RELATIONAL_RELATION_H_
