#ifndef FUSION_RELATIONAL_SCHEMA_H_
#define FUSION_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace fusion {

/// One column of a relation: a name and a declared type. NULLs are allowed in
/// any column.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
};

/// An ordered list of named, typed columns. In the fusion-query setting all
/// source relations share one schema that includes the merge attribute M
/// (Section 2.1 of the paper).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name`, or error if absent. Case-sensitive.
  Result<size_t> IndexOf(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  bool operator==(const Schema& other) const;
  bool operator!=(const Schema& other) const { return !(*this == other); }

  /// "(L:string, V:string, D:int64)"
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

/// A row: one Value per schema column.
using Tuple = std::vector<Value>;

/// Checks that `tuple` matches `schema` (arity and per-column type, with NULL
/// permitted everywhere).
Status ValidateTuple(const Schema& schema, const Tuple& tuple);

}  // namespace fusion

#endif  // FUSION_RELATIONAL_SCHEMA_H_
