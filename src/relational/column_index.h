#ifndef FUSION_RELATIONAL_COLUMN_INDEX_H_
#define FUSION_RELATIONAL_COLUMN_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "relational/relation.h"

namespace fusion {

/// Hash index over one column of a relation: value → row positions. Built
/// once, read-only thereafter (the backing relation must not change; our
/// simulated sources are immutable after construction).
///
/// This is an implementation accelerator, not a cost-model feature: the
/// simulated per-tuple processing charge still reflects the *source's*
/// declared scan cost, while the simulator itself answers semijoins and
/// record fetches in O(candidates) instead of O(|R|) — the difference
/// matters when benches run thousands of emulated per-binding probes.
class ColumnIndex {
 public:
  /// Builds the index over `column` (NULLs are not indexed).
  static Result<ColumnIndex> Build(const Relation& relation,
                                   const std::string& column);

  /// Row positions holding `value`; null when absent.
  const std::vector<size_t>* Rows(const Value& value) const;

  size_t distinct_values() const { return rows_by_value_.size(); }
  const std::string& column() const { return column_; }

 private:
  ColumnIndex() = default;

  std::string column_;
  std::unordered_map<Value, std::vector<size_t>, ValueHash> rows_by_value_;
};

}  // namespace fusion

#endif  // FUSION_RELATIONAL_COLUMN_INDEX_H_
