#ifndef FUSION_RELATIONAL_CONDITION_H_
#define FUSION_RELATIONAL_CONDITION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "relational/schema.h"

namespace fusion {

class ColumnarTable;
class SelectionBitmap;

/// Comparison operators for condition atoms.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);

/// A single-variable selection condition `c_i` over the common source schema
/// (Section 2.2). Conditions are immutable trees shared by cheap copies, so
/// plans and queries can pass them around freely.
///
/// Grammar: atoms are attribute-vs-constant comparisons, BETWEEN, and IN;
/// atoms combine with AND / OR / NOT. `True()` is the vacuous condition.
class Condition {
 public:
  /// Constructs the vacuously true condition.
  Condition();

  static Condition True();
  /// The unsatisfiable condition (used by the simplifier for detected
  /// contradictions; sources evaluate it to an empty result).
  static Condition False();
  static Condition Compare(std::string attribute, CompareOp op, Value constant);
  static Condition Between(std::string attribute, Value lo, Value hi);
  static Condition In(std::string attribute, std::vector<Value> constants);
  static Condition And(Condition lhs, Condition rhs);
  static Condition Or(Condition lhs, Condition rhs);
  static Condition Not(Condition operand);

  /// Convenience: attribute = constant, the paper's running-example shape
  /// (`V = 'dui'`).
  static Condition Eq(std::string attribute, Value constant) {
    return Compare(std::move(attribute), CompareOp::kEq, std::move(constant));
  }

  /// Evaluates against one tuple. NULL attribute values compare as
  /// not-satisfying any atom (SQL-ish three-valued logic collapsed to false).
  /// Errors if the condition references a column absent from `schema`.
  Result<bool> Evaluate(const Schema& schema, const Tuple& tuple) const;

  /// Batch evaluation: resolves each atom's column index once, evaluates the
  /// predicate over whole columns, and writes the satisfying rows into `out`
  /// (resized to the table's row count). Bit i set ⇔ Evaluate(schema, row i)
  /// returns true — the two evaluators are interchangeable by construction
  /// (property-tested). Defined in columnar.cc.
  Status EvaluateBatch(const ColumnarTable& table, SelectionBitmap* out) const;

  /// Checks all referenced attributes exist in `schema`.
  Status Validate(const Schema& schema) const;

  /// Attribute names referenced, deduplicated, in first-mention order.
  std::vector<std::string> ReferencedAttributes() const;

  /// Renders "V = 'dui'", "D BETWEEN 1993 AND 1995", "(a OR b)" etc.
  std::string ToString() const;

  /// ToString() with every attribute reference prefixed (e.g. "u1." for
  /// variable-qualified SQL rendering). TRUE/FALSE print unprefixed — they
  /// reference no attribute.
  std::string ToStringPrefixed(const std::string& attribute_prefix) const;

  /// Structural equality (same tree shape, operators and constants).
  bool Equals(const Condition& other) const;

  /// Returns a semantically equivalent canonical form:
  ///  - nested ANDs/ORs are flattened, duplicates dropped, operands sorted
  ///    into a canonical (textual) order;
  ///  - TRUE/FALSE propagate (x AND FALSE → FALSE, x OR TRUE → TRUE, ...);
  ///  - double negation cancels; NOT TRUE → FALSE;
  ///  - degenerate atoms collapse (empty IN → FALSE, one-element IN → =,
  ///    BETWEEN with lo > hi → FALSE, BETWEEN lo = hi → =);
  ///  - detectable conjunction contradictions become FALSE (two different
  ///    equalities on one attribute; an equality falling outside a BETWEEN
  ///    or IN on the same attribute);
  ///  - equalities on one attribute OR-combine into IN.
  /// Canonical forms maximize source-call cache hits (keys are condition
  /// text) and give the optimizer trivially-empty conditions to exploit.
  Condition Simplified() const;

  /// Canonical cache key: the Simplified() form rendered as text. Unlike raw
  /// ToString(), commutatively equal conditions — `(a AND b)` vs `(b AND a)`,
  /// duplicated or reordered disjuncts — map to one key, so result caches
  /// keyed on this never miss on syntactic permutations. Simplification is
  /// semantics-preserving, hence two conditions sharing a key have identical
  /// answers at any source.
  std::string CacheKey() const { return Simplified().ToString(); }

  /// True for the vacuous condition created by True()/default construction.
  bool IsTrue() const;
  /// True for the unsatisfiable condition created by False().
  bool IsFalse() const;

  /// Implementation detail (exposed for the evaluator translation unit);
  /// treat as private.
  struct Node;

 private:
  explicit Condition(std::shared_ptr<const Node> node);

  std::shared_ptr<const Node> node_;
};

/// Parses a condition string. Supported syntax (case-insensitive keywords):
///   attr op constant          op in {=, !=, <>, <, <=, >, >=}
///   attr BETWEEN x AND y
///   attr IN (v1, v2, ...)
///   NOT expr, expr AND expr, expr OR expr, parentheses
/// Constants: 123, 4.5, 'text'. AND binds tighter than OR.
Result<Condition> ParseCondition(const std::string& text);

}  // namespace fusion

#endif  // FUSION_RELATIONAL_CONDITION_H_
