#ifndef FUSION_RELATIONAL_COLUMNAR_H_
#define FUSION_RELATIONAL_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "relational/condition.h"
#include "relational/schema.h"

namespace fusion {

/// A dense bitmap over row positions — the currency of batch condition
/// evaluation. Predicates are evaluated column-at-a-time into one of these,
/// and AND/OR/NOT become word-wide bit operations instead of per-row
/// branches. Semantics mirror the row evaluator exactly: bit i set ⇔
/// Condition::Evaluate would return true for row i (NULL attribute values
/// fail every atom, so they read as 0 in atom bitmaps and flip to 1 under
/// NOT, just like the scalar path).
class SelectionBitmap {
 public:
  SelectionBitmap() = default;
  explicit SelectionBitmap(size_t size, bool value = false);

  size_t size() const { return size_; }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  void SetAll();
  void ClearAll();
  /// this &= other / this |= other; sizes must match.
  void AndWith(const SelectionBitmap& other);
  void OrWith(const SelectionBitmap& other);
  /// Logical NOT (the tail beyond size() stays zero).
  void FlipAll();

  /// Number of set bits (popcount over the words).
  size_t CountSet() const;

  /// Calls fn(row) for every set bit in ascending row order.
  template <typename Fn>
  void ForEachSet(Fn fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn((w << 6) + static_cast<size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  std::vector<uint64_t>& words() { return words_; }
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// One attribute's values in contiguous, type-specialized storage. Exactly
/// one of the payload vectors is populated, per `type`:
///  - kInt64  → ints[row]
///  - kDouble → dbls[row]
///  - kString → codes[row] indexes into `dict`, the column's sorted-unique
///    dictionary (the value pool); code order therefore equals value order,
///    so range predicates compile to integer comparisons on codes.
/// NULL rows carry a 0 bit in `valid` (their payload slot is a zero filler).
struct Column {
  ValueType type = ValueType::kNull;
  SelectionBitmap valid;  // bit per row; 1 = non-NULL
  bool has_nulls = false;
  std::vector<int64_t> ints;
  std::vector<double> dbls;
  std::vector<uint32_t> codes;
  std::vector<std::string> dict;

  size_t ApproxBytes() const;
};

/// Lightweight typed accessor over one column of a ColumnarTable.
class ColumnView {
 public:
  ColumnView(const Column* column, size_t rows)
      : column_(column), rows_(rows) {}

  ValueType type() const { return column_->type; }
  size_t size() const { return rows_; }
  bool IsNull(size_t row) const { return !column_->valid.Test(row); }
  bool has_nulls() const { return column_->has_nulls; }

  const int64_t* ints() const { return column_->ints.data(); }
  const double* dbls() const { return column_->dbls.data(); }
  const uint32_t* codes() const { return column_->codes.data(); }
  const std::vector<std::string>& dict() const { return column_->dict; }

  /// Materializes row's value (NULL for invalid rows).
  Value GetValue(size_t row) const;

  const Column& column() const { return *column_; }

 private:
  const Column* column_;
  size_t rows_;
};

/// Column-major mirror of a relation: per-attribute contiguous arrays plus
/// validity bitmaps, built once from the row store and immutable thereafter.
/// Build fails (kInvalidArgument) if a non-NULL value's runtime type differs
/// from the schema's declared column type — callers fall back to the row
/// evaluator, so hand-assembled ill-typed relations keep their exact legacy
/// semantics.
class ColumnarTable {
 public:
  static Result<ColumnarTable> FromRows(const Schema& schema,
                                        const std::vector<Tuple>& rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  ColumnView column(size_t i) const { return ColumnView(&columns_[i], num_rows_); }

  size_t ApproxBytes() const;

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

/// Process-wide batch-evaluation statistics (relaxed atomics). The relational
/// layer cannot depend on obs/metrics, so the counters live here and the
/// serving/bench layers export them (bench_macro's schema-4 `local_eval`
/// block reads these).
struct ColumnarEvalStats {
  uint64_t batch_evals = 0;      // EvaluateBatch calls
  uint64_t rows_evaluated = 0;   // rows covered by those calls
};
ColumnarEvalStats GetColumnarEvalStats();

}  // namespace fusion

#endif  // FUSION_RELATIONAL_COLUMNAR_H_
