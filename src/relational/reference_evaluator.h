#ifndef FUSION_RELATIONAL_REFERENCE_EVALUATOR_H_
#define FUSION_RELATIONAL_REFERENCE_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/item_set.h"
#include "common/status.h"
#include "relational/condition.h"
#include "relational/relation.h"

namespace fusion {

/// Computes the exact answer of a fusion query directly from the source
/// relations, with no planning: an item `m` qualifies iff for every condition
/// `c_i` there exists a tuple with merge value `m` satisfying `c_i` in *some*
/// source (the SQL semantics of the paper's query over U = R1 ∪ ... ∪ Rn).
///
/// Used as ground truth in tests and benchmarks: every plan any optimizer
/// produces must execute to exactly this set.
Result<ItemSet> ReferenceFusionAnswer(
    const std::vector<const Relation*>& sources,
    const std::string& merge_attribute,
    const std::vector<Condition>& conditions);

}  // namespace fusion

#endif  // FUSION_RELATIONAL_REFERENCE_EVALUATOR_H_
