#include "relational/condition.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <functional>
#include <map>
#include <optional>
#include <functional>
#include <cstdlib>

#include "common/str_util.h"
#include "relational/condition_internal.h"

namespace fusion {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Condition::Condition() {
  auto node = std::make_shared<Condition::Node>();
  node->kind = Node::Kind::kTrue;
  node_ = std::move(node);
}

Condition::Condition(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Condition Condition::True() { return Condition(); }

Condition Condition::False() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kFalse;
  return Condition(std::move(node));
}

Condition Condition::Compare(std::string attribute, CompareOp op,
                             Value constant) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kCompare;
  node->attribute = std::move(attribute);
  node->op = op;
  node->constant = std::move(constant);
  return Condition(std::move(node));
}

Condition Condition::Between(std::string attribute, Value lo, Value hi) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kBetween;
  node->attribute = std::move(attribute);
  node->lo = std::move(lo);
  node->hi = std::move(hi);
  return Condition(std::move(node));
}

Condition Condition::In(std::string attribute, std::vector<Value> constants) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kIn;
  node->attribute = std::move(attribute);
  node->set = std::move(constants);
  return Condition(std::move(node));
}

Condition Condition::And(Condition lhs, Condition rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAnd;
  node->left = lhs.node_;
  node->right = rhs.node_;
  return Condition(std::move(node));
}

Condition Condition::Or(Condition lhs, Condition rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kOr;
  node->left = lhs.node_;
  node->right = rhs.node_;
  return Condition(std::move(node));
}

Condition Condition::Not(Condition operand) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kNot;
  node->left = operand.node_;
  return Condition(std::move(node));
}

namespace {

bool CompareSatisfied(const Value& lhs, CompareOp op, const Value& rhs) {
  const int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

}  // namespace

Result<bool> EvaluateNode(const Condition::Node& node, const Schema& schema,
                          const Tuple& tuple);

Result<bool> Condition::Evaluate(const Schema& schema,
                                 const Tuple& tuple) const {
  return EvaluateNode(*node_, schema, tuple);
}

Result<bool> EvaluateNode(const Condition::Node& node, const Schema& schema,
                          const Tuple& tuple) {
  using Kind = Condition::Node::Kind;
  switch (node.kind) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kCompare: {
      FUSION_ASSIGN_OR_RETURN(const size_t idx, schema.IndexOf(node.attribute));
      const Value& v = tuple[idx];
      if (v.is_null()) return false;
      return CompareSatisfied(v, node.op, node.constant);
    }
    case Kind::kBetween: {
      FUSION_ASSIGN_OR_RETURN(const size_t idx, schema.IndexOf(node.attribute));
      const Value& v = tuple[idx];
      if (v.is_null()) return false;
      return v >= node.lo && v <= node.hi;
    }
    case Kind::kIn: {
      FUSION_ASSIGN_OR_RETURN(const size_t idx, schema.IndexOf(node.attribute));
      const Value& v = tuple[idx];
      if (v.is_null()) return false;
      for (const Value& candidate : node.set) {
        if (v == candidate) return true;
      }
      return false;
    }
    case Kind::kAnd: {
      FUSION_ASSIGN_OR_RETURN(const bool lhs,
                              EvaluateNode(*node.left, schema, tuple));
      if (!lhs) return false;
      return EvaluateNode(*node.right, schema, tuple);
    }
    case Kind::kOr: {
      FUSION_ASSIGN_OR_RETURN(const bool lhs,
                              EvaluateNode(*node.left, schema, tuple));
      if (lhs) return true;
      return EvaluateNode(*node.right, schema, tuple);
    }
    case Kind::kNot: {
      FUSION_ASSIGN_OR_RETURN(const bool v,
                              EvaluateNode(*node.left, schema, tuple));
      return !v;
    }
  }
  return Status::Internal("corrupt condition node");
}

namespace {

Status ValidateNode(const Condition::Node& node, const Schema& schema) {
  using Kind = Condition::Node::Kind;
  switch (node.kind) {
    case Kind::kTrue:
    case Kind::kFalse:
      return Status::Ok();
    case Kind::kCompare:
    case Kind::kBetween:
    case Kind::kIn: {
      if (!schema.HasColumn(node.attribute)) {
        return Status::NotFound("condition references unknown attribute '" +
                                node.attribute + "' in schema " +
                                schema.ToString());
      }
      return Status::Ok();
    }
    case Kind::kAnd:
    case Kind::kOr: {
      FUSION_RETURN_IF_ERROR(ValidateNode(*node.left, schema));
      return ValidateNode(*node.right, schema);
    }
    case Kind::kNot:
      return ValidateNode(*node.left, schema);
  }
  return Status::Internal("corrupt condition node");
}

void CollectAttributes(const Condition::Node& node,
                       std::vector<std::string>& out) {
  using Kind = Condition::Node::Kind;
  switch (node.kind) {
    case Kind::kTrue:
    case Kind::kFalse:
      return;
    case Kind::kCompare:
    case Kind::kBetween:
    case Kind::kIn:
      if (std::find(out.begin(), out.end(), node.attribute) == out.end()) {
        out.push_back(node.attribute);
      }
      return;
    case Kind::kAnd:
    case Kind::kOr:
      CollectAttributes(*node.left, out);
      CollectAttributes(*node.right, out);
      return;
    case Kind::kNot:
      CollectAttributes(*node.left, out);
      return;
  }
}

std::string NodeToString(const Condition::Node& node,
                         const std::string& prefix = std::string()) {
  using Kind = Condition::Node::Kind;
  switch (node.kind) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kFalse:
      return "FALSE";
    case Kind::kCompare:
      return prefix + node.attribute + " " + CompareOpSymbol(node.op) + " " +
             node.constant.ToString();
    case Kind::kBetween:
      return prefix + node.attribute + " BETWEEN " + node.lo.ToString() +
             " AND " + node.hi.ToString();
    case Kind::kIn: {
      std::string out = prefix + node.attribute + " IN (";
      for (size_t i = 0; i < node.set.size(); ++i) {
        if (i > 0) out += ", ";
        out += node.set[i].ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kAnd:
      return "(" + NodeToString(*node.left, prefix) + " AND " +
             NodeToString(*node.right, prefix) + ")";
    case Kind::kOr:
      return "(" + NodeToString(*node.left, prefix) + " OR " +
             NodeToString(*node.right, prefix) + ")";
    case Kind::kNot:
      return "NOT (" + NodeToString(*node.left, prefix) + ")";
  }
  return "?";
}

bool NodesEqual(const Condition::Node& a, const Condition::Node& b) {
  using Kind = Condition::Node::Kind;
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::kTrue:
    case Kind::kFalse:
      return true;
    case Kind::kCompare:
      return a.attribute == b.attribute && a.op == b.op &&
             a.constant == b.constant;
    case Kind::kBetween:
      return a.attribute == b.attribute && a.lo == b.lo && a.hi == b.hi;
    case Kind::kIn:
      return a.attribute == b.attribute && a.set == b.set;
    case Kind::kAnd:
    case Kind::kOr:
      return NodesEqual(*a.left, *b.left) && NodesEqual(*a.right, *b.right);
    case Kind::kNot:
      return NodesEqual(*a.left, *b.left);
  }
  return false;
}

}  // namespace

Status Condition::Validate(const Schema& schema) const {
  return ValidateNode(*node_, schema);
}

std::vector<std::string> Condition::ReferencedAttributes() const {
  std::vector<std::string> out;
  CollectAttributes(*node_, out);
  return out;
}

std::string Condition::ToString() const { return NodeToString(*node_); }

std::string Condition::ToStringPrefixed(
    const std::string& attribute_prefix) const {
  return NodeToString(*node_, attribute_prefix);
}

bool Condition::Equals(const Condition& other) const {
  return NodesEqual(*node_, *other.node_);
}

bool Condition::IsTrue() const { return node_->kind == Node::Kind::kTrue; }

bool Condition::IsFalse() const {
  return node_->kind == Node::Kind::kFalse;
}

// ---------------------------------------------------------------------------
// Condition parser
// ---------------------------------------------------------------------------

namespace {

/// Token stream over a condition string.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  /// Peeks the next token without consuming. Empty string at end of input.
  std::string Peek() {
    if (!has_peek_) {
      peek_ = LexNext();
      has_peek_ = true;
    }
    return peek_;
  }

  std::string Next() {
    std::string t = Peek();
    has_peek_ = false;
    return t;
  }

  bool AtEnd() { return Peek().empty(); }

  const Status& status() const { return status_; }

 private:
  std::string LexNext() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return "";
    const char c = text_[pos_];
    if (c == '(' || c == ')' || c == ',') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '\'') {
      // String literal; '' escapes a quote.
      std::string out = "'";
      ++pos_;
      while (pos_ < text_.size()) {
        if (text_[pos_] == '\'') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
            out += '\'';
            pos_ += 2;
            continue;
          }
          ++pos_;
          return out;  // leading quote marks it as a string literal token
        }
        out += text_[pos_++];
      }
      status_ = Status::ParseError("unterminated string literal");
      return "";
    }
    if (c == '<' || c == '>' || c == '=' || c == '!') {
      std::string out(1, c);
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '=' || (c == '<' && text_[pos_] == '>'))) {
        out += text_[pos_++];
      }
      return out;
    }
    // Identifier / number / keyword.
    std::string out;
    while (pos_ < text_.size()) {
      const char d = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
          d == '.' || d == '-' || d == '+') {
        out += d;
        ++pos_;
      } else {
        break;
      }
    }
    if (out.empty()) {
      status_ = Status::ParseError(StrFormat("unexpected character '%c'", c));
      ++pos_;
    }
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string peek_;
  bool has_peek_ = false;
  Status status_;
};

bool IsKeyword(const std::string& token, const char* kw) {
  return EqualsIgnoreCase(token, kw);
}

/// Parses a constant token into a Value. A token beginning with a single
/// quote is a string (quote stripped); otherwise it must parse as a number.
Result<Value> ParseConstantToken(const std::string& token) {
  if (token.empty()) return Status::ParseError("expected a constant");
  if (token[0] == '\'') return Value(token.substr(1));
  // Try integer then double.
  bool integral = true;
  for (size_t i = 0; i < token.size(); ++i) {
    const char c = token[i];
    if (std::isdigit(static_cast<unsigned char>(c))) continue;
    if ((c == '-' || c == '+') && i == 0) continue;
    integral = false;
    break;
  }
  if (integral && token != "-" && token != "+") {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (end == token.c_str() + token.size() && errno == 0) {
      return Value(static_cast<int64_t>(v));
    }
  }
  char* end = nullptr;
  const double d = std::strtod(token.c_str(), &end);
  if (end == token.c_str() + token.size() && !token.empty()) {
    return Value(d);
  }
  return Status::ParseError("cannot parse constant: " + token);
}

Result<CompareOp> ParseOpToken(const std::string& token) {
  if (token == "=") return CompareOp::kEq;
  if (token == "!=" || token == "<>") return CompareOp::kNe;
  if (token == "<") return CompareOp::kLt;
  if (token == "<=") return CompareOp::kLe;
  if (token == ">") return CompareOp::kGt;
  if (token == ">=") return CompareOp::kGe;
  return Status::ParseError("expected comparison operator, got '" + token +
                            "'");
}

Result<Condition> ParseOr(Lexer& lex);

Result<Condition> ParsePrimary(Lexer& lex) {
  std::string token = lex.Next();
  if (token.empty()) return Status::ParseError("unexpected end of condition");
  if (token == "(") {
    FUSION_ASSIGN_OR_RETURN(Condition inner, ParseOr(lex));
    if (lex.Next() != ")") return Status::ParseError("expected ')'");
    return inner;
  }
  if (IsKeyword(token, "NOT")) {
    FUSION_ASSIGN_OR_RETURN(Condition inner, ParsePrimary(lex));
    return Condition::Not(std::move(inner));
  }
  if (IsKeyword(token, "TRUE")) return Condition::True();
  if (IsKeyword(token, "FALSE")) return Condition::False();
  // `token` is an attribute name.
  const std::string attr = token;
  std::string next = lex.Next();
  if (IsKeyword(next, "BETWEEN")) {
    FUSION_ASSIGN_OR_RETURN(Value lo, ParseConstantToken(lex.Next()));
    if (!IsKeyword(lex.Next(), "AND")) {
      return Status::ParseError("expected AND in BETWEEN");
    }
    FUSION_ASSIGN_OR_RETURN(Value hi, ParseConstantToken(lex.Next()));
    return Condition::Between(attr, std::move(lo), std::move(hi));
  }
  if (IsKeyword(next, "IN")) {
    if (lex.Next() != "(") return Status::ParseError("expected '(' after IN");
    std::vector<Value> values;
    while (true) {
      FUSION_ASSIGN_OR_RETURN(Value v, ParseConstantToken(lex.Next()));
      values.push_back(std::move(v));
      const std::string sep = lex.Next();
      if (sep == ")") break;
      if (sep != ",") return Status::ParseError("expected ',' or ')' in IN");
    }
    return Condition::In(attr, std::move(values));
  }
  FUSION_ASSIGN_OR_RETURN(const CompareOp op, ParseOpToken(next));
  FUSION_ASSIGN_OR_RETURN(Value constant, ParseConstantToken(lex.Next()));
  return Condition::Compare(attr, op, std::move(constant));
}

Result<Condition> ParseAnd(Lexer& lex) {
  FUSION_ASSIGN_OR_RETURN(Condition lhs, ParsePrimary(lex));
  while (IsKeyword(lex.Peek(), "AND")) {
    lex.Next();
    FUSION_ASSIGN_OR_RETURN(Condition rhs, ParsePrimary(lex));
    lhs = Condition::And(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<Condition> ParseOr(Lexer& lex) {
  FUSION_ASSIGN_OR_RETURN(Condition lhs, ParseAnd(lex));
  while (IsKeyword(lex.Peek(), "OR")) {
    lex.Next();
    FUSION_ASSIGN_OR_RETURN(Condition rhs, ParseAnd(lex));
    lhs = Condition::Or(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

}  // namespace

Result<Condition> ParseCondition(const std::string& text) {
  Lexer lex(text);
  FUSION_ASSIGN_OR_RETURN(Condition cond, ParseOr(lex));
  if (!lex.status().ok()) return lex.status();
  if (!lex.AtEnd()) {
    return Status::ParseError("trailing input after condition: '" +
                              lex.Peek() + "'");
  }
  return cond;
}

// ---------------------------------------------------------------------------
// Simplification (Condition::Simplified)
// ---------------------------------------------------------------------------

Condition Condition::Simplified() const {
  using Kind = Node::Kind;
  const Node& n = *node_;
  switch (n.kind) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kCompare:
      return *this;
    case Kind::kBetween: {
      const int c = n.lo.Compare(n.hi);
      if (c > 0) return False();
      if (c == 0) return Eq(n.attribute, n.lo);
      return *this;
    }
    case Kind::kIn: {
      std::vector<Value> values = n.set;
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      if (values.empty()) return False();
      if (values.size() == 1) return Eq(n.attribute, values[0]);
      return In(n.attribute, std::move(values));
    }
    case Kind::kNot: {
      const Condition inner = Condition(n.left).Simplified();
      if (inner.IsTrue()) return False();
      if (inner.IsFalse()) return True();
      if (inner.node_->kind == Kind::kNot) {
        return Condition(inner.node_->left).Simplified();
      }
      return Not(inner);
    }
    case Kind::kAnd:
    case Kind::kOr:
      break;  // handled below
  }

  const bool is_and = n.kind == Kind::kAnd;

  // Flatten the same-kind subtree into an operand list, simplifying each
  // leaf of the n-ary operator (re-flattening anything simplification
  // exposes).
  std::vector<Condition> operands;
  std::function<void(const Condition&, bool)> flatten =
      [&](const Condition& c, bool simplify) {
        if (c.node_->kind == n.kind) {
          flatten(Condition(c.node_->left), simplify);
          flatten(Condition(c.node_->right), simplify);
          return;
        }
        if (simplify) {
          const Condition s = c.Simplified();
          if (s.node_->kind == n.kind) {
            flatten(s, /*simplify=*/false);
          } else {
            operands.push_back(s);
          }
        } else {
          operands.push_back(c);
        }
      };
  flatten(Condition(node_), /*simplify=*/true);

  // Identity/absorbing elements.
  std::vector<Condition> kept;
  for (const Condition& c : operands) {
    if (is_and) {
      if (c.IsTrue()) continue;
      if (c.IsFalse()) return False();
    } else {
      if (c.IsFalse()) continue;
      if (c.IsTrue()) return True();
    }
    kept.push_back(c);
  }

  // Deduplicate structurally.
  std::vector<Condition> unique_ops;
  for (const Condition& c : kept) {
    bool seen = false;
    for (const Condition& u : unique_ops) {
      if (c.Equals(u)) {
        seen = true;
        break;
      }
    }
    if (!seen) unique_ops.push_back(c);
  }

  if (is_and) {
    // Range folding: order atoms (<, <=, >, >=, =, BETWEEN) on one attribute
    // tighten into a single interval; an empty interval is a contradiction.
    // Only attributes whose constants are mutually comparable (all numeric
    // or all strings) participate.
    struct Bound {
      Value value;
      bool inclusive = true;
    };
    struct AttrRange {
      std::optional<Bound> lo, hi;
      bool foldable = true;
      bool is_numeric = false;
      bool has_type = false;
      size_t atoms = 0;
    };
    auto note_type = [](AttrRange& r, const Value& v) {
      const bool numeric =
          v.type() == ValueType::kInt64 || v.type() == ValueType::kDouble;
      if (!r.has_type) {
        r.has_type = true;
        r.is_numeric = numeric;
      } else if (r.is_numeric != numeric) {
        r.foldable = false;
      }
    };
    auto tighten_lo = [](AttrRange& r, const Value& v, bool inclusive) {
      if (!r.lo || v > r.lo->value || (v == r.lo->value && !inclusive)) {
        r.lo = Bound{v, inclusive};
      }
    };
    auto tighten_hi = [](AttrRange& r, const Value& v, bool inclusive) {
      if (!r.hi || v < r.hi->value || (v == r.hi->value && !inclusive)) {
        r.hi = Bound{v, inclusive};
      }
    };

    std::map<std::string, AttrRange> ranges;
    for (const Condition& c : unique_ops) {
      const Node& nc = *c.node_;
      if (nc.kind == Kind::kCompare && nc.op != CompareOp::kNe) {
        AttrRange& r = ranges[nc.attribute];
        ++r.atoms;
        note_type(r, nc.constant);
        switch (nc.op) {
          case CompareOp::kEq:
            tighten_lo(r, nc.constant, true);
            tighten_hi(r, nc.constant, true);
            break;
          case CompareOp::kLt:
            tighten_hi(r, nc.constant, false);
            break;
          case CompareOp::kLe:
            tighten_hi(r, nc.constant, true);
            break;
          case CompareOp::kGt:
            tighten_lo(r, nc.constant, false);
            break;
          case CompareOp::kGe:
            tighten_lo(r, nc.constant, true);
            break;
          case CompareOp::kNe:
            break;
        }
      } else if (nc.kind == Kind::kBetween) {
        AttrRange& r = ranges[nc.attribute];
        ++r.atoms;
        note_type(r, nc.lo);
        note_type(r, nc.hi);
        tighten_lo(r, nc.lo, true);
        tighten_hi(r, nc.hi, true);
      }
    }
    for (auto& [attr, r] : ranges) {
      if (!r.foldable || r.atoms < 2) continue;
      if (r.lo && r.hi) {
        const int c = r.lo->value.Compare(r.hi->value);
        if (c > 0 || (c == 0 && !(r.lo->inclusive && r.hi->inclusive))) {
          return False();  // empty interval
        }
      }
      // Replace this attribute's folded atoms by the canonical interval.
      std::vector<Condition> next;
      for (const Condition& c : unique_ops) {
        const Node& nc = *c.node_;
        const bool folded =
            (nc.kind == Kind::kCompare && nc.op != CompareOp::kNe &&
             nc.attribute == attr) ||
            (nc.kind == Kind::kBetween && nc.attribute == attr);
        if (!folded) next.push_back(c);
      }
      if (r.lo && r.hi && r.lo->value == r.hi->value) {
        next.push_back(Eq(attr, r.lo->value));
      } else if (r.lo && r.hi && r.lo->inclusive && r.hi->inclusive) {
        next.push_back(Between(attr, r.lo->value, r.hi->value));
      } else {
        if (r.lo) {
          next.push_back(Compare(
              attr, r.lo->inclusive ? CompareOp::kGe : CompareOp::kGt,
              r.lo->value));
        }
        if (r.hi) {
          next.push_back(Compare(
              attr, r.hi->inclusive ? CompareOp::kLe : CompareOp::kLt,
              r.hi->value));
        }
      }
      unique_ops = std::move(next);
    }

    // Conjunction contradictions involving an equality atom.
    for (const Condition& a : unique_ops) {
      const Node& na = *a.node_;
      if (na.kind != Kind::kCompare || na.op != CompareOp::kEq) continue;
      for (const Condition& b : unique_ops) {
        const Node& nb = *b.node_;
        if (&na == &nb || nb.attribute != na.attribute) continue;
        if (nb.kind == Kind::kCompare && nb.op == CompareOp::kEq &&
            nb.constant != na.constant) {
          return False();  // x = v1 AND x = v2 with v1 != v2
        }
        if (nb.kind == Kind::kBetween &&
            (na.constant < nb.lo || na.constant > nb.hi)) {
          return False();  // x = v AND x BETWEEN [lo, hi] with v outside
        }
        if (nb.kind == Kind::kIn) {
          bool contained = false;
          for (const Value& v : nb.set) {
            if (v == na.constant) {
              contained = true;
              break;
            }
          }
          if (!contained) return False();  // x = v AND x IN (...) sans v
        }
      }
    }
  } else {
    // Merge equality atoms on one attribute into IN.
    std::vector<Condition> merged;
    std::vector<std::pair<std::string, std::vector<Value>>> eqs;
    for (const Condition& c : unique_ops) {
      const Node& nc = *c.node_;
      if (nc.kind == Kind::kCompare && nc.op == CompareOp::kEq) {
        bool found = false;
        for (auto& [attr, values] : eqs) {
          if (attr == nc.attribute) {
            values.push_back(nc.constant);
            found = true;
            break;
          }
        }
        if (!found) eqs.push_back({nc.attribute, {nc.constant}});
      } else {
        merged.push_back(c);
      }
    }
    for (auto& [attr, values] : eqs) {
      merged.push_back(values.size() == 1
                           ? Eq(attr, values[0])
                           : In(attr, std::move(values)).Simplified());
    }
    unique_ops = std::move(merged);
  }

  if (unique_ops.empty()) return is_and ? True() : False();
  if (unique_ops.size() == 1) return unique_ops[0];

  // Canonical textual order, then left-associated rebuild.
  std::stable_sort(unique_ops.begin(), unique_ops.end(),
                   [](const Condition& a, const Condition& b) {
                     return a.ToString() < b.ToString();
                   });
  Condition out = unique_ops[0];
  for (size_t i = 1; i < unique_ops.size(); ++i) {
    out = is_and ? And(out, unique_ops[i]) : Or(out, unique_ops[i]);
  }
  return out;
}

}  // namespace fusion
