#include "relational/columnar.h"

#include <algorithm>
#include <atomic>

#include "relational/condition_internal.h"

namespace fusion {

// ---------------------------------------------------------------------------
// SelectionBitmap
// ---------------------------------------------------------------------------

SelectionBitmap::SelectionBitmap(size_t size, bool value)
    : size_(size), words_((size + 63) / 64, value ? ~uint64_t{0} : 0) {
  if (value) {
    SetAll();  // re-run to mask the tail word
  }
}

void SelectionBitmap::SetAll() {
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() = (uint64_t{1} << tail) - 1;
  }
}

void SelectionBitmap::ClearAll() {
  std::fill(words_.begin(), words_.end(), uint64_t{0});
}

void SelectionBitmap::AndWith(const SelectionBitmap& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void SelectionBitmap::OrWith(const SelectionBitmap& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void SelectionBitmap::FlipAll() {
  for (uint64_t& w : words_) w = ~w;
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

size_t SelectionBitmap::CountSet() const {
  size_t n = 0;
  for (const uint64_t w : words_) {
    n += static_cast<size_t>(__builtin_popcountll(w));
  }
  return n;
}

// ---------------------------------------------------------------------------
// Column / ColumnarTable
// ---------------------------------------------------------------------------

size_t Column::ApproxBytes() const {
  size_t bytes = valid.words().capacity() * sizeof(uint64_t) +
                 ints.capacity() * sizeof(int64_t) +
                 dbls.capacity() * sizeof(double) +
                 codes.capacity() * sizeof(uint32_t);
  for (const std::string& s : dict) bytes += sizeof(std::string) + s.capacity();
  return bytes;
}

Value ColumnView::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type()) {
    case ValueType::kInt64:
      return Value(column_->ints[row]);
    case ValueType::kDouble:
      return Value(column_->dbls[row]);
    case ValueType::kString:
      return Value(column_->dict[column_->codes[row]]);
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

Result<ColumnarTable> ColumnarTable::FromRows(const Schema& schema,
                                              const std::vector<Tuple>& rows) {
  ColumnarTable out;
  out.schema_ = schema;
  out.num_rows_ = rows.size();
  out.columns_.resize(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    Column& col = out.columns_[c];
    col.type = schema.column(c).type;
    col.valid = SelectionBitmap(rows.size(), false);
    switch (col.type) {
      case ValueType::kInt64:
        col.ints.assign(rows.size(), 0);
        break;
      case ValueType::kDouble:
        col.dbls.assign(rows.size(), 0.0);
        break;
      case ValueType::kString:
        col.codes.assign(rows.size(), 0);
        break;
      case ValueType::kNull:
        return Status::InvalidArgument("column '" + schema.column(c).name +
                                       "' has null type");
    }
  }
  // First pass: scatter typed payloads (strings collect raw for dictionary
  // encoding below).
  std::vector<std::vector<const std::string*>> raw_strings(
      schema.num_columns());
  for (size_t r = 0; r < rows.size(); ++r) {
    const Tuple& t = rows[r];
    for (size_t c = 0; c < out.columns_.size(); ++c) {
      const Value& v = t[c];
      if (v.is_null()) continue;
      Column& col = out.columns_[c];
      if (v.type() != col.type) {
        return Status::InvalidArgument(
            "row value type " + std::string(ValueTypeName(v.type())) +
            " does not match declared column type for '" +
            schema.column(c).name + "'");
      }
      col.valid.Set(r);
      switch (col.type) {
        case ValueType::kInt64:
          col.ints[r] = v.int64();
          break;
        case ValueType::kDouble:
          col.dbls[r] = v.dbl();
          break;
        case ValueType::kString:
          if (raw_strings[c].empty()) raw_strings[c].reserve(rows.size());
          raw_strings[c].push_back(&v.str());
          break;
        case ValueType::kNull:
          break;
      }
    }
  }
  // Dictionary-encode string columns: the dict is the sorted-unique value
  // pool, so code order equals value order.
  for (size_t c = 0; c < out.columns_.size(); ++c) {
    Column& col = out.columns_[c];
    col.has_nulls = col.valid.CountSet() != rows.size();
    if (col.type != ValueType::kString) continue;
    std::vector<std::string> dict;
    dict.reserve(raw_strings[c].size());
    for (const std::string* s : raw_strings[c]) dict.push_back(*s);
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
    dict.shrink_to_fit();
    size_t next = 0;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (!col.valid.Test(r)) continue;
      const std::string& s = *raw_strings[c][next++];
      const auto it = std::lower_bound(dict.begin(), dict.end(), s);
      col.codes[r] = static_cast<uint32_t>(it - dict.begin());
    }
    col.dict = std::move(dict);
  }
  return out;
}

size_t ColumnarTable::ApproxBytes() const {
  size_t bytes = sizeof(ColumnarTable);
  for (const Column& c : columns_) bytes += c.ApproxBytes();
  return bytes;
}

// ---------------------------------------------------------------------------
// Batch condition evaluation
// ---------------------------------------------------------------------------

namespace {

std::atomic<uint64_t> g_batch_evals{0};
std::atomic<uint64_t> g_rows_evaluated{0};

/// Three-way comparison matching Value::Compare for same-width scalars:
/// NaN compares "equal" to everything exactly as the Value operators do
/// (both < and > false), so the batch and row paths agree bit-for-bit even
/// on pathological doubles.
template <typename T>
inline int Cmp3(T a, T b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

inline bool OpHolds(int c, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

/// Fills `out` from a per-row predicate, 64 rows per word.
template <typename Pred>
void FillPredicate(size_t rows, SelectionBitmap* out, Pred pred) {
  std::vector<uint64_t>& words = out->words();
  for (size_t w = 0; w < words.size(); ++w) {
    const size_t base = w << 6;
    const size_t n = std::min<size_t>(64, rows - base);
    uint64_t bits = 0;
    for (size_t j = 0; j < n; ++j) {
      bits |= static_cast<uint64_t>(pred(base + j)) << j;
    }
    words[w] = bits;
  }
}

/// Sets `out` to `verdict` on every valid (non-NULL) row — the compiled form
/// of an atom whose outcome is row-independent (e.g. a cross-type compare
/// that resolves purely by type rank).
void FillConstant(const ColumnView& col, bool verdict, SelectionBitmap* out) {
  if (!verdict) {
    out->ClearAll();
    return;
  }
  if (!col.has_nulls()) {
    out->SetAll();
    return;
  }
  out->words() = col.column().valid.words();
}

/// Rank used for the cross-type portion of Value's total order (matches
/// TypeRank in value.cc: enum order null < int64 < double < string).
inline int TypeRankOf(ValueType t) { return static_cast<int>(t); }

inline bool IsNumericType(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

/// Compiles `column op constant` into `out`. Exactly mirrors the scalar
/// CompareSatisfied(v, op, constant): same-type columns compare natively
/// (strings via dictionary-code ranges), int64/double cross-compares go
/// through double exactly like Value::Compare, and any other type mix
/// resolves to a constant verdict by type rank.
void EvalCompare(const ColumnView& col, CompareOp op, const Value& constant,
                 SelectionBitmap* out) {
  const size_t rows = col.size();
  const ValueType ct = col.type();
  const ValueType kt = constant.type();
  if (ct == ValueType::kInt64 && kt == ValueType::kInt64) {
    const int64_t k = constant.int64();
    const int64_t* v = col.ints();
    FillPredicate(rows, out,
                  [&](size_t r) { return OpHolds(Cmp3(v[r], k), op); });
  } else if (ct == ValueType::kDouble && kt == ValueType::kDouble) {
    const double k = constant.dbl();
    const double* v = col.dbls();
    FillPredicate(rows, out,
                  [&](size_t r) { return OpHolds(Cmp3(v[r], k), op); });
  } else if (ct == ValueType::kInt64 && kt == ValueType::kDouble) {
    const double k = constant.dbl();
    const int64_t* v = col.ints();
    FillPredicate(rows, out, [&](size_t r) {
      return OpHolds(Cmp3(static_cast<double>(v[r]), k), op);
    });
  } else if (ct == ValueType::kDouble && kt == ValueType::kInt64) {
    const double k = static_cast<double>(constant.int64());
    const double* v = col.dbls();
    FillPredicate(rows, out,
                  [&](size_t r) { return OpHolds(Cmp3(v[r], k), op); });
  } else if (ct == ValueType::kString && kt == ValueType::kString) {
    // Binary-search the constant in the sorted dictionary: rows with
    // code < pos sort before the constant, code == pos (when present)
    // equal it, the rest sort after. Every CompareOp becomes one or two
    // integer comparisons on the code array.
    const std::vector<std::string>& dict = col.dict();
    const auto it =
        std::lower_bound(dict.begin(), dict.end(), constant.str());
    const bool present = it != dict.end() && *it == constant.str();
    const uint32_t pos = static_cast<uint32_t>(it - dict.begin());
    const uint32_t* v = col.codes();
    switch (op) {
      case CompareOp::kEq:
        if (!present) {
          out->ClearAll();
          return;  // no validity mask needed: nothing is set
        }
        FillPredicate(rows, out, [&](size_t r) { return v[r] == pos; });
        break;
      case CompareOp::kNe:
        if (!present) {
          FillConstant(col, true, out);
          return;  // FillConstant already applies validity
        }
        FillPredicate(rows, out, [&](size_t r) { return v[r] != pos; });
        break;
      case CompareOp::kLt:
        FillPredicate(rows, out, [&](size_t r) { return v[r] < pos; });
        break;
      case CompareOp::kLe: {
        const uint32_t bound = present ? pos + 1 : pos;
        FillPredicate(rows, out, [&](size_t r) { return v[r] < bound; });
        break;
      }
      case CompareOp::kGe:
        FillPredicate(rows, out, [&](size_t r) { return v[r] >= pos; });
        break;
      case CompareOp::kGt: {
        const uint32_t bound = present ? pos + 1 : pos;
        FillPredicate(rows, out, [&](size_t r) { return v[r] >= bound; });
        break;
      }
    }
  } else {
    // Type ranks differ and the pair is not numeric-vs-numeric (that case is
    // handled above): Value::Compare resolves by rank alone, identically for
    // every non-NULL row. A NULL constant also lands here (rank 0, below
    // every value type).
    const int c = Cmp3(TypeRankOf(ct), TypeRankOf(kt));
    FillConstant(col, OpHolds(c, op), out);
    return;  // FillConstant applies the validity mask itself
  }
  if (col.has_nulls()) out->AndWith(col.column().valid);
}

/// v >= lo && v <= hi with Value semantics, as two compiled compares.
void EvalBetween(const ColumnView& col, const Value& lo, const Value& hi,
                 SelectionBitmap* out) {
  EvalCompare(col, CompareOp::kGe, lo, out);
  SelectionBitmap upper(col.size());
  EvalCompare(col, CompareOp::kLe, hi, &upper);
  out->AndWith(upper);
}

/// v IN (set): per-row scan over the (typically small) candidate list, with
/// each equality test compiled per (column type, candidate type) pair using
/// the same Cmp3 expressions as EvalCompare — including the NaN and
/// int64/double cross-equality corners.
void EvalIn(const ColumnView& col, const std::vector<Value>& set,
            SelectionBitmap* out) {
  const size_t rows = col.size();
  const ValueType ct = col.type();
  if (ct == ValueType::kString) {
    // Matching candidates reduce to a set of dictionary codes.
    const std::vector<std::string>& dict = col.dict();
    std::vector<uint32_t> match;
    for (const Value& cand : set) {
      if (cand.type() != ValueType::kString) continue;  // cross-type: never ==
      const auto it = std::lower_bound(dict.begin(), dict.end(), cand.str());
      if (it != dict.end() && *it == cand.str()) {
        match.push_back(static_cast<uint32_t>(it - dict.begin()));
      }
    }
    std::sort(match.begin(), match.end());
    match.erase(std::unique(match.begin(), match.end()), match.end());
    if (match.empty()) {
      out->ClearAll();
      return;
    }
    const uint32_t* v = col.codes();
    if (match.size() == 1) {
      const uint32_t m = match[0];
      FillPredicate(rows, out, [&](size_t r) { return v[r] == m; });
    } else {
      FillPredicate(rows, out, [&](size_t r) {
        return std::binary_search(match.begin(), match.end(), v[r]);
      });
    }
  } else if (ct == ValueType::kInt64) {
    // Split candidates: int64s compare exactly, doubles via the cross-type
    // double promotion (matching Value::Compare).
    std::vector<int64_t> ik;
    std::vector<double> dk;
    for (const Value& cand : set) {
      if (cand.type() == ValueType::kInt64) ik.push_back(cand.int64());
      else if (cand.type() == ValueType::kDouble) dk.push_back(cand.dbl());
    }
    const int64_t* v = col.ints();
    FillPredicate(rows, out, [&](size_t r) {
      for (const int64_t k : ik) {
        if (Cmp3(v[r], k) == 0) return true;
      }
      if (!dk.empty()) {
        const double d = static_cast<double>(v[r]);
        for (const double k : dk) {
          if (Cmp3(d, k) == 0) return true;
        }
      }
      return false;
    });
  } else {  // kDouble
    std::vector<double> dk;
    for (const Value& cand : set) {
      if (cand.type() == ValueType::kDouble) dk.push_back(cand.dbl());
      else if (cand.type() == ValueType::kInt64) {
        dk.push_back(static_cast<double>(cand.int64()));
      }
    }
    const double* v = col.dbls();
    FillPredicate(rows, out, [&](size_t r) {
      for (const double k : dk) {
        if (Cmp3(v[r], k) == 0) return true;
      }
      return false;
    });
  }
  if (col.has_nulls()) out->AndWith(col.column().valid);
}

Status EvaluateNodeBatch(const Condition::Node& node,
                         const ColumnarTable& table, SelectionBitmap* out) {
  using Kind = Condition::Node::Kind;
  switch (node.kind) {
    case Kind::kTrue:
      out->SetAll();
      return Status::Ok();
    case Kind::kFalse:
      out->ClearAll();
      return Status::Ok();
    case Kind::kCompare: {
      FUSION_ASSIGN_OR_RETURN(const size_t idx,
                              table.schema().IndexOf(node.attribute));
      EvalCompare(table.column(idx), node.op, node.constant, out);
      return Status::Ok();
    }
    case Kind::kBetween: {
      FUSION_ASSIGN_OR_RETURN(const size_t idx,
                              table.schema().IndexOf(node.attribute));
      EvalBetween(table.column(idx), node.lo, node.hi, out);
      return Status::Ok();
    }
    case Kind::kIn: {
      FUSION_ASSIGN_OR_RETURN(const size_t idx,
                              table.schema().IndexOf(node.attribute));
      EvalIn(table.column(idx), node.set, out);
      return Status::Ok();
    }
    case Kind::kAnd: {
      FUSION_RETURN_IF_ERROR(EvaluateNodeBatch(*node.left, table, out));
      SelectionBitmap rhs(table.num_rows());
      FUSION_RETURN_IF_ERROR(EvaluateNodeBatch(*node.right, table, &rhs));
      out->AndWith(rhs);
      return Status::Ok();
    }
    case Kind::kOr: {
      FUSION_RETURN_IF_ERROR(EvaluateNodeBatch(*node.left, table, out));
      SelectionBitmap rhs(table.num_rows());
      FUSION_RETURN_IF_ERROR(EvaluateNodeBatch(*node.right, table, &rhs));
      out->OrWith(rhs);
      return Status::Ok();
    }
    case Kind::kNot: {
      FUSION_RETURN_IF_ERROR(EvaluateNodeBatch(*node.left, table, out));
      out->FlipAll();
      return Status::Ok();
    }
  }
  return Status::Internal("corrupt condition node");
}

}  // namespace

Status Condition::EvaluateBatch(const ColumnarTable& table,
                                SelectionBitmap* out) const {
  if (out->size() != table.num_rows()) {
    *out = SelectionBitmap(table.num_rows());
  }
  g_batch_evals.fetch_add(1, std::memory_order_relaxed);
  g_rows_evaluated.fetch_add(table.num_rows(), std::memory_order_relaxed);
  return EvaluateNodeBatch(*node_, table, out);
}

ColumnarEvalStats GetColumnarEvalStats() {
  ColumnarEvalStats stats;
  stats.batch_evals = g_batch_evals.load(std::memory_order_relaxed);
  stats.rows_evaluated = g_rows_evaluated.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace fusion
