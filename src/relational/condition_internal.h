#ifndef FUSION_RELATIONAL_CONDITION_INTERNAL_H_
#define FUSION_RELATIONAL_CONDITION_INTERNAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "relational/condition.h"

/// The condition tree's node layout, shared by the two evaluator translation
/// units: the row-at-a-time interpreter in condition.cc and the batch
/// (bitmap) evaluator in columnar.cc. Everything here is an implementation
/// detail of Condition — include this header only from those files (and
/// never from another public header).

namespace fusion {

struct Condition::Node {
  enum class Kind { kTrue, kFalse, kCompare, kBetween, kIn, kAnd, kOr, kNot };

  Kind kind = Kind::kTrue;
  // kCompare / kBetween / kIn:
  std::string attribute;
  CompareOp op = CompareOp::kEq;
  Value constant;          // kCompare
  Value lo, hi;            // kBetween
  std::vector<Value> set;  // kIn
  // kAnd / kOr (two children) and kNot (one child):
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

}  // namespace fusion

#endif  // FUSION_RELATIONAL_CONDITION_INTERNAL_H_
