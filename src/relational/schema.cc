#include "relational/schema.h"

#include "common/str_util.h"

namespace fusion {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "' in " + ToString());
}

bool Schema::HasColumn(const std::string& name) const {
  for (const ColumnDef& c : columns_) {
    if (c.name == name) return true;
  }
  return false;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

Status ValidateTuple(const Schema& schema, const Tuple& tuple) {
  if (tuple.size() != schema.num_columns()) {
    return Status::InvalidArgument(StrFormat(
        "tuple has %zu values but schema %s has %zu columns", tuple.size(),
        schema.ToString().c_str(), schema.num_columns()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_null()) continue;
    if (tuple[i].type() != schema.column(i).type) {
      return Status::InvalidArgument(StrFormat(
          "column '%s' expects %s but got %s",
          schema.column(i).name.c_str(), ValueTypeName(schema.column(i).type),
          tuple[i].ToString().c_str()));
    }
  }
  return Status::Ok();
}

}  // namespace fusion
