#include "relational/reference_evaluator.h"

namespace fusion {

Result<ItemSet> ReferenceFusionAnswer(
    const std::vector<const Relation*>& sources,
    const std::string& merge_attribute,
    const std::vector<Condition>& conditions) {
  if (sources.empty()) {
    return Status::InvalidArgument("fusion query over zero sources");
  }
  if (conditions.empty()) {
    return Status::InvalidArgument("fusion query with zero conditions");
  }
  ItemSet answer;
  bool first = true;
  for (const Condition& cond : conditions) {
    ItemSet satisfying;
    for (const Relation* r : sources) {
      FUSION_ASSIGN_OR_RETURN(ItemSet part,
                              r->SelectItems(cond, merge_attribute));
      satisfying = ItemSet::Union(satisfying, part);
    }
    if (first) {
      answer = std::move(satisfying);
      first = false;
    } else {
      answer = ItemSet::Intersect(answer, satisfying);
    }
    if (answer.empty()) break;  // no item can recover once eliminated
  }
  return answer;
}

}  // namespace fusion
