#ifndef FUSION_EXEC_EXECUTOR_H_
#define FUSION_EXEC_EXECUTOR_H_

#include "common/item_set.h"
#include "common/status.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "query/fusion_query.h"
#include "source/catalog.h"
#include "exec/source_call_cache.h"
#include "source/cost_ledger.h"

namespace fusion {

/// What actually happened when a plan ran against live sources.
struct ExecutionReport {
  ItemSet answer;
  CostLedger ledger;
  /// Semijoin ops that had to be emulated with per-binding selections
  /// because the source lacks native semijoin support.
  size_t emulated_semijoins = 0;
  /// Ops never evaluated thanks to lazy short-circuiting (0 when eager).
  size_t skipped_ops = 0;
  /// Source-call re-attempts after transient failures (0 when nothing
  /// flaked or max_attempts == 1). Every retry also left a wasted charge on
  /// the ledger; this counter makes retry storms visible without diffing
  /// ledgers.
  size_t retries_total = 0;
  /// Selections answered from / missed in ExecOptions::cache (both 0 when
  /// no cache is attached). A hit issued no source call and charged
  /// nothing.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Metered cost of each plan op, aligned with Plan::ops() (an emulated
  /// semijoin's probe charges are summed into its op). Lets the
  /// response-time analyzer compute the *measured* parallel makespan:
  /// ComputeResponseTime(plan, report.per_op_cost).
  std::vector<double> per_op_cost;
  /// Witness knowledge gathered for free during execution: per source (by
  /// catalog index), the merge values this source was observed to hold —
  /// every item a source returned provably has a record there. Used by the
  /// second-phase fetch planner to avoid asking every source.
  std::vector<ItemSet> per_source_items;
  /// Measured elapsed wall-clock time of the whole execution, in seconds.
  /// Under ExecOptions::simulated_seconds_per_cost > 0 this is the *measured
  /// makespan*: dividing by the scale yields cost units directly comparable
  /// with ComputeResponseTime(plan, per_op_cost).response_time (parallel
  /// execution) or with ledger.total() (sequential execution).
  double wall_clock_makespan = 0.0;
  /// Window into the global Tracer covering this execution (inert when
  /// tracing was disabled). `trace.Spans()` returns the per-op and
  /// source-call spans of this run; obs/trace_export.h turns them into
  /// Chrome trace-event JSON.
  TraceHandle trace;
};

/// Runtime options for plan execution.
struct ExecOptions {
  /// Lazy, demand-driven evaluation with sound short-circuits: a semijoin
  /// whose candidate set is empty returns ∅ without contacting the source;
  /// an intersection whose running accumulator is empty skips the remaining
  /// operand subtrees entirely; a difference with an empty left side skips
  /// its right side. The answer is always identical to eager execution —
  /// only the (metered) work can shrink. This is runtime adaptivity the
  /// optimizer cannot plan for, since it depends on actual data.
  bool lazy_short_circuit = false;
  /// Total attempts per source call (1 = no retries). Transient failures
  /// (StatusCode::kInternal, e.g. injected by FlakySource) are retried up to
  /// this many times; permanent errors (kUnsupported, schema problems) are
  /// not. Every attempt's cost stays on the ledger — retries are not free.
  int max_attempts = 1;
  /// Optional memo of selection-query answers shared across executions
  /// (see SourceCallCache). Cached hits cost nothing and appear in the
  /// report's cache statistics rather than the ledger. The cache is
  /// internally synchronized and single-flight deduplicated, so it may be
  /// shared by concurrent workers and concurrent executions.
  SourceCallCache* cache = nullptr;
  /// Worker count for the parallel plan executor. 1 (the default) runs the
  /// classic sequential interpreter and preserves its semantics exactly;
  /// > 1 walks the plan's op dependency DAG with a thread pool, overlapping
  /// data-independent source calls (queries to the *same* source still
  /// serialize in plan order, matching plan/response_time.h's model). The
  /// answer, per-op costs, and merged ledger are identical to sequential
  /// execution. Combined with lazy_short_circuit the lazy sequential
  /// interpreter runs instead (demand-driven evaluation is inherently
  /// serial; its payoff is skipping work, not overlapping it).
  int parallelism = 1;
  /// When > 0, every plan op additionally sleeps for
  /// (its metered cost) * this many seconds, turning the abstract cost units
  /// into real source latencies. Benchmarks use it to demonstrate that
  /// parallel execution's measured wall-clock makespan tracks the
  /// theoretical critical-path makespan. 0 (default) = no artificial delay.
  double simulated_seconds_per_cost = 0.0;
};

/// The mediator's plan interpreter: runs `plan` for `query` against the
/// catalog's sources, metering every source interaction. Semijoin queries to
/// sources with only passed-binding support are emulated as one
/// `c AND M = m` selection per candidate item (Section 2.3); sources with no
/// binding support at all fail the plan with kUnsupported. Local operations
/// (∪, ∩, −, selection over loaded relations) run at the mediator for free.
Result<ExecutionReport> ExecutePlan(const Plan& plan,
                                    const SourceCatalog& catalog,
                                    const FusionQuery& query);

/// As above, with runtime options.
Result<ExecutionReport> ExecutePlan(const Plan& plan,
                                    const SourceCatalog& catalog,
                                    const FusionQuery& query,
                                    const ExecOptions& options);

}  // namespace fusion

#endif  // FUSION_EXEC_EXECUTOR_H_
