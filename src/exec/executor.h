#ifndef FUSION_EXEC_EXECUTOR_H_
#define FUSION_EXEC_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/item_set.h"
#include "common/status.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "query/fusion_query.h"
#include "source/catalog.h"
#include "exec/source_call_cache.h"
#include "source/cost_ledger.h"

namespace fusion {

class SourceHealth;

/// One source excluded from one condition's union by degraded-mode
/// execution: every call to it was exhausted (retries spent, breaker open,
/// or deadline hit) and the executor substituted ∅ for its contribution.
struct SourceExclusion {
  /// Condition index the exclusion applies to; -1 means the whole query
  /// (a degraded load whose relation never fed a local selection).
  int condition = -1;
  int source = -1;  // catalog index
  /// The final status that exhausted the source, e.g.
  /// "Unavailable: circuit breaker open for source 'R2'".
  std::string reason;
};

/// Completeness metadata for a (possibly partial) answer. The fusion answer
/// is an intersection of per-condition unions U_i = ∪_j sq(c_i, R_j);
/// dropping a source from some union can only *shrink* it, so every item
/// that survives the intersection still provably satisfies every condition
/// at some responding source. A degraded answer is therefore **sound**
/// (no false positives) but possibly **incomplete** (items witnessed only
/// by the excluded sources are missing).
struct CompletenessReport {
  /// True iff no source was excluded anywhere — the answer is the full one.
  bool answer_complete = true;
  /// Soundness of the partial answer. Always true on a returned report: the
  /// executor refuses ∅-substitution at non-monotone plan positions (the
  /// right side of a difference) and fails the query instead, because
  /// shrinking a subtrahend could *add* items. Present so callers can
  /// assert the invariant rather than trust it.
  bool sound = true;
  std::vector<SourceExclusion> excluded;
  /// Plan-op indices whose results were substituted with ∅ (or an empty
  /// relation). Lets consumers that walk the plan next to the ledger —
  /// e.g. session statistics learning — skip ops that charged failed
  /// attempts but produced no answer.
  std::vector<int> degraded_ops;

  /// Catalog indices excluded from `condition`'s union (deduplicated).
  std::vector<int> ExcludedSources(int condition) const;
  /// Human-readable account, one exclusion per line; names are optional
  /// (indices are printed when a name vector is empty or short).
  std::string ToString(const std::vector<std::string>& condition_names = {},
                       const std::vector<std::string>& source_names = {}) const;
};

/// What actually happened when a plan ran against live sources.
struct ExecutionReport {
  ItemSet answer;
  CostLedger ledger;
  /// Semijoin ops that had to be emulated with per-binding selections
  /// because the source lacks native semijoin support.
  size_t emulated_semijoins = 0;
  /// Ops never evaluated thanks to lazy short-circuiting (0 when eager).
  size_t skipped_ops = 0;
  /// Source-call re-attempts after transient failures (0 when nothing
  /// flaked or max_attempts == 1). Every retry also left a wasted charge on
  /// the ledger; this counter makes retry storms visible without diffing
  /// ledgers.
  size_t retries_total = 0;
  /// Source calls answered from / missed in ExecOptions::cache (both 0 when
  /// no cache is attached). A hit issued no source call and charged
  /// nothing.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Calls whose exact key missed but whose answer was still derived locally
  /// from a *containing* cached entry (sjq from a cached sq or
  /// candidate-superset sjq; sq/sjq from a cached lq). Free like a hit, and
  /// also counted in cache_misses (the exact key did miss).
  size_t cache_containment_hits = 0;
  /// Calls failed fast by an open circuit breaker (no round-trip issued, no
  /// ledger charge). 0 unless ExecOptions::health is attached.
  size_t breaker_fast_fails = 0;
  /// Emulated-semijoin probes skipped because the source's merge-column
  /// Bloom filter proved the binding absent (no probe issued, no charge).
  /// 0 unless ExecOptions::bloom_probe_prefilter is on.
  size_t semijoin_probes_skipped = 0;
  /// Which sources (if any) were excluded under degraded-mode execution,
  /// per condition — and the soundness contract of the partial answer.
  /// `completeness.answer_complete` is true for every non-degraded run.
  CompletenessReport completeness;
  /// Metered cost of each plan op, aligned with Plan::ops() (an emulated
  /// semijoin's probe charges are summed into its op). Lets the
  /// response-time analyzer compute the *measured* parallel makespan:
  /// ComputeResponseTime(plan, report.per_op_cost).
  std::vector<double> per_op_cost;
  /// Wall-clock seconds each plan op spent evaluating, aligned with
  /// Plan::ops() (0 for ops skipped by lazy short-circuiting). Measured with
  /// the steady clock independently of the tracer, so EXPLAIN can annotate
  /// the executed plan with per-op timings even when tracing is disabled.
  std::vector<double> per_op_seconds;
  /// Cache provenance of each plan op, aligned with Plan::ops():
  ///   'h'  every metered call the op issued was an exact cache hit
  ///   'c'  answered with at least one containment-derived hit, rest hits
  ///   'm'  at least one real miss (a source was contacted)
  ///   '-'  no cacheable calls (local op, skipped op, or no cache attached)
  std::vector<char> per_op_cache;
  /// Witness knowledge gathered for free during execution: per source (by
  /// catalog index), the merge values this source was observed to hold —
  /// every item a source returned provably has a record there. Used by the
  /// second-phase fetch planner to avoid asking every source.
  std::vector<ItemSet> per_source_items;
  /// Measured elapsed wall-clock time of the whole execution, in seconds.
  /// Under ExecOptions::simulated_seconds_per_cost > 0 this is the *measured
  /// makespan*: dividing by the scale yields cost units directly comparable
  /// with ComputeResponseTime(plan, per_op_cost).response_time (parallel
  /// execution) or with ledger.total() (sequential execution).
  double wall_clock_makespan = 0.0;
  /// Window into the global Tracer covering this execution (inert when
  /// tracing was disabled). `trace.Spans()` returns the per-op and
  /// source-call spans of this run; obs/trace_export.h turns them into
  /// Chrome trace-event JSON.
  TraceHandle trace;
};

/// How source calls are retried and bounded. Subsumes the old bare
/// `max_attempts`: attempts, exponential backoff with *deterministic* seeded
/// jitter (identical seeds ⇒ identical retry schedules, under any executor),
/// and a per-call timeout.
struct RetryPolicy {
  /// Total attempts per source call (1 = no retries). Transient failures
  /// (kInternal, and per-call timeouts) are retried up to this many times;
  /// permanent errors (kUnsupported, kUnavailable, schema problems) are
  /// not. Every attempt's cost stays on the ledger — retries are not free.
  int max_attempts = 1;
  /// Sleep before the first re-attempt; doubles (see multiplier) per
  /// further attempt. 0 (default) = immediate retries, as before.
  double initial_backoff_seconds = 0.0;
  double backoff_multiplier = 2.0;
  /// Upper bound on a single backoff sleep (0 = uncapped).
  double max_backoff_seconds = 1.0;
  /// Symmetric jitter: each sleep is scaled by a factor in
  /// [1 - jitter_fraction, 1 + jitter_fraction], computed *deterministically*
  /// from (jitter_seed, source index, attempt) — no shared RNG stream, so
  /// parallel executors cannot perturb the schedule. Range [0, 1).
  double jitter_fraction = 0.0;
  uint64_t jitter_seed = 1;
  /// When > 0, an attempt whose wall-clock duration exceeds this is treated
  /// as a timeout failure (kDeadlineExceeded, retriable) even if an answer
  /// eventually arrived — a real mediator would have hung up. This is what
  /// makes slow sources trip the per-query deadline and the breaker.
  double call_timeout_seconds = 0.0;

  /// The (jittered, capped) sleep before re-attempt `attempt` (1-based).
  /// Pure function of the policy, the source, and the attempt number.
  double BackoffSeconds(size_t source_index, int attempt) const;
};

/// What the executor does when a source call is *exhausted* — retries spent
/// on a transient failure, a permanent kUnavailable (source down or circuit
/// breaker open), or the per-query deadline/cost budget hit.
enum class SourceFailurePolicy {
  /// Fail the whole query with the source's error (the classic behavior).
  kFail,
  /// Substitute ∅ for the failed sq/sjq/lq leaf and keep going, returning a
  /// sound partial answer with a CompletenessReport naming the excluded
  /// sources. Substitution is refused (the query still fails) at plan
  /// positions where ∅ is not provably sound — see CompletenessReport.
  kDegrade,
};

/// Runtime options for plan execution.
struct ExecOptions {
  /// Lazy, demand-driven evaluation with sound short-circuits: a semijoin
  /// whose candidate set is empty returns ∅ without contacting the source;
  /// an intersection whose running accumulator is empty skips the remaining
  /// operand subtrees entirely; a difference with an empty left side skips
  /// its right side. The answer is always identical to eager execution —
  /// only the (metered) work can shrink. This is runtime adaptivity the
  /// optimizer cannot plan for, since it depends on actual data.
  bool lazy_short_circuit = false;
  /// Per-call retry/backoff/timeout policy (retry.max_attempts was
  /// previously ExecOptions::max_attempts).
  RetryPolicy retry;
  /// Wall-clock budget for the whole execution (0 = none). Once exceeded,
  /// further source calls and backoff sleeps fail fast with
  /// kDeadlineExceeded; an in-flight call is not interrupted, so total
  /// wall clock is bounded by deadline + one call duration.
  double deadline_seconds = 0.0;
  /// Metered-cost budget for the whole execution (0 = none). Checked before
  /// each source call against the cost charged so far (all ledgers,
  /// failed attempts included).
  double cost_budget = 0.0;
  /// Optional cooperative cancellation token (the serving layer's CANCEL
  /// path). When non-null and set, further source calls and backoff sleeps
  /// fail fast with kCancelled; like the deadline, an in-flight call is not
  /// interrupted, so cancellation latency is bounded by one call duration.
  /// kCancelled is never retried and never degraded — a cancelled query
  /// fails as a whole, immediately freeing its executor workers.
  const std::atomic<bool>* cancel = nullptr;
  /// Whether an exhausted source fails the query or degrades the answer.
  SourceFailurePolicy on_source_failure = SourceFailurePolicy::kFail;
  /// Optional shared per-source circuit breakers (see exec/source_health.h).
  /// Typically owned by a QuerySession so one query's failures fast-fail the
  /// next query's calls. Null = no breaker.
  SourceHealth* health = nullptr;
  /// Optional memo of selection-query answers shared across executions
  /// (see SourceCallCache). Cached hits cost nothing and appear in the
  /// report's cache statistics rather than the ledger. The cache is
  /// internally synchronized and single-flight deduplicated, so it may be
  /// shared by concurrent workers and concurrent executions.
  SourceCallCache* cache = nullptr;
  /// Worker count for the parallel plan executor. 1 (the default) runs the
  /// classic sequential interpreter and preserves its semantics exactly;
  /// > 1 walks the plan's op dependency DAG with a thread pool, overlapping
  /// data-independent source calls (queries to the *same* source still
  /// serialize in plan order, matching plan/response_time.h's model). The
  /// answer, per-op costs, and merged ledger are identical to sequential
  /// execution. Combined with lazy_short_circuit the lazy sequential
  /// interpreter runs instead (demand-driven evaluation is inherently
  /// serial; its payoff is skipping work, not overlapping it).
  int parallelism = 1;
  /// When > 0, every plan op additionally sleeps for
  /// (its metered cost) * this many seconds, turning the abstract cost units
  /// into real source latencies. Benchmarks use it to demonstrate that
  /// parallel execution's measured wall-clock makespan tracks the
  /// theoretical critical-path makespan. 0 (default) = no artificial delay.
  double simulated_seconds_per_cost = 0.0;
  /// When true, emulated semijoins consult the source's merge-column Bloom
  /// filter (SourceWrapper::MergeBloom) and skip probes for bindings the
  /// filter rejects. A Bloom filter has no false negatives, so the answer is
  /// byte-identical with the option on or off; only the metered probe
  /// charges shrink (skipped probes never contact the source). Off by
  /// default because the cost model — and the tests pinning it — meter one
  /// probe per candidate.
  bool bloom_probe_prefilter = false;
};

/// Rejects nonsensical options with kInvalidArgument before any source is
/// contacted: retry.max_attempts < 1, parallelism < 1, negative
/// simulated_seconds_per_cost / deadline / budget / backoff / timeout,
/// backoff_multiplier < 1, jitter_fraction outside [0, 1). Called by
/// ExecutePlan; exposed for callers that want to validate eagerly.
Status ValidateExecOptions(const ExecOptions& options);

/// The mediator's plan interpreter: runs `plan` for `query` against the
/// catalog's sources, metering every source interaction. Semijoin queries to
/// sources with only passed-binding support are emulated as one
/// `c AND M = m` selection per candidate item (Section 2.3); sources with no
/// binding support at all fail the plan with kUnsupported. Local operations
/// (∪, ∩, −, selection over loaded relations) run at the mediator for free.
Result<ExecutionReport> ExecutePlan(const Plan& plan,
                                    const SourceCatalog& catalog,
                                    const FusionQuery& query);

/// As above, with runtime options.
Result<ExecutionReport> ExecutePlan(const Plan& plan,
                                    const SourceCatalog& catalog,
                                    const FusionQuery& query,
                                    const ExecOptions& options);

}  // namespace fusion

#endif  // FUSION_EXEC_EXECUTOR_H_
