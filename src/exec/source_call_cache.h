#ifndef FUSION_EXEC_SOURCE_CALL_CACHE_H_
#define FUSION_EXEC_SOURCE_CALL_CACHE_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/item_set.h"

namespace fusion {

/// Session-level memo of selection-query answers: (source index, condition
/// text) → item set. Eliminates repeated identical source queries across
/// plans and across queries — the runtime counterpart of the
/// common-subexpression elimination that Section 5 says resolution-based
/// mediators would need at plan time, and a big win for the SPJ-union
/// baseline and for repeated fusion queries against the same federation.
///
/// Thread-safety: every method is internally synchronized, so one cache can
/// be shared by concurrently running executions (parallel plan workers, or
/// whole plans racing in different threads). Identical in-flight calls are
/// deduplicated ("single-flight"): the first caller of BeginFlight for a key
/// becomes the *leader* and performs the source call; callers arriving while
/// the call is outstanding block until the leader publishes, then read the
/// memoized answer without contacting the source. If the leader's call fails
/// the flight is abandoned and one waiter is promoted to leader (a failed
/// call must not poison the key).
///
/// Published entries are immutable and never overwritten, so the `ItemSet*`
/// returned by Lookup / FlightGuard::cached() stays valid until Clear().
/// Clear() must not race with in-flight executions.
///
/// Staleness caveat: cached answers reflect the sources at the time of the
/// original call; autonomous sources may change. Call Clear() between
/// "sessions" or whenever freshness matters more than cost.
class SourceCallCache {
 public:
  SourceCallCache() = default;

  // Cache identity matters (the executor holds a pointer); not copyable.
  SourceCallCache(const SourceCallCache&) = delete;
  SourceCallCache& operator=(const SourceCallCache&) = delete;

  /// RAII handle for one single-flight participation. Exactly one of two
  /// states: `cached() != nullptr` (answer available, use it) or leader
  /// (cached() == nullptr): the caller must perform the source call and
  /// either Fulfill(answer) or drop the guard, which abandons the flight and
  /// lets a waiter retry.
  class FlightGuard {
   public:
    FlightGuard(FlightGuard&& other) noexcept;
    FlightGuard& operator=(FlightGuard&&) = delete;
    FlightGuard(const FlightGuard&) = delete;
    FlightGuard& operator=(const FlightGuard&) = delete;
    ~FlightGuard();

    /// The memoized answer, or null when this caller is the flight leader.
    const ItemSet* cached() const { return cached_; }

    /// Leader only: publishes the answer and wakes all waiters.
    void Fulfill(const ItemSet& items);

   private:
    friend class SourceCallCache;
    struct Flight;
    FlightGuard(SourceCallCache* cache, const ItemSet* cached,
                std::pair<size_t, std::string> key,
                std::shared_ptr<Flight> flight)
        : cache_(cache),
          cached_(cached),
          key_(std::move(key)),
          flight_(std::move(flight)) {}

    SourceCallCache* cache_ = nullptr;
    const ItemSet* cached_ = nullptr;
    std::pair<size_t, std::string> key_;
    std::shared_ptr<Flight> flight_;  // non-null iff this guard leads
  };

  /// Single-flight entry point: returns a cache hit, or waits out another
  /// thread's identical in-flight call, or makes the caller the leader.
  /// Counts a hit when an answer is (eventually) served from the memo and a
  /// miss when the caller is told to perform the call itself.
  FlightGuard BeginFlight(size_t source, const std::string& cond_key);

  /// Returns the cached answer for sq(cond_key, R_source), or null. Does not
  /// wait on in-flight calls (plain memo read).
  const ItemSet* Lookup(size_t source, const std::string& cond_key);

  /// Memoizes an answer. First writer wins: an existing entry is kept
  /// (identical for deterministic sources, and keeping it preserves pointer
  /// stability for concurrent readers).
  void Insert(size_t source, std::string cond_key, ItemSet items);

  void Clear();

  size_t hits() const;
  size_t misses() const;
  size_t entries() const;
  /// Times a caller blocked on (deduplicated into) another caller's
  /// identical in-flight source call.
  size_t flights_deduplicated() const;

 private:
  const ItemSet* LookupLocked(const std::pair<size_t, std::string>& key);
  void SettleFlight(const std::pair<size_t, std::string>& key,
                    const std::shared_ptr<FlightGuard::Flight>& flight,
                    const ItemSet* items);

  mutable std::mutex mu_;
  std::map<std::pair<size_t, std::string>, ItemSet> entries_;
  std::map<std::pair<size_t, std::string>, std::shared_ptr<FlightGuard::Flight>>
      inflight_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t flights_deduplicated_ = 0;
};

}  // namespace fusion

#endif  // FUSION_EXEC_SOURCE_CALL_CACHE_H_
