#ifndef FUSION_EXEC_SOURCE_CALL_CACHE_H_
#define FUSION_EXEC_SOURCE_CALL_CACHE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/item_set.h"
#include "relational/condition.h"
#include "relational/relation.h"

namespace fusion {

/// Cross-query memo of source-call answers: sq, sjq, and lq results keyed by
/// (source index, canonical condition text). Eliminates repeated identical
/// source queries across plans and across the queries of a session — the
/// runtime counterpart of the common-subexpression elimination that Section 5
/// says resolution-based mediators would need at plan time, and the main
/// amortization lever under the ROADMAP's heavy repeated traffic.
///
/// Beyond exact-key reuse the cache performs **containment reuse**, all free
/// per the paper's cost model (local mediator work costs nothing):
///  - sjq(c, R, X) from a cached sjq(c, R, Y) with X ⊆ Y: result ∩ X;
///  - sjq(c, R, X) from a cached sq(c, R): answer ∩ X;
///  - sq(c, R) and sjq(c, R, X) from a cached lq(R): evaluate c locally.
/// All rules are sound for deterministic sources: a derived answer is
/// byte-identical to what the source would have returned (tested).
///
/// Resource bounds: entries are LRU-evicted once `Options::max_bytes` is
/// exceeded (the budget is a hard invariant, checked after every insert) and
/// lazily expired after `Options::ttl_seconds`. Entries are handed out as
/// shared_ptr, so eviction never invalidates an answer a caller still holds.
///
/// Invalidation: every source carries a version. Invalidate(source) erases
/// the source's entries and bumps its version; an in-flight call that began
/// under the old version completes normally but its publish is dropped, so
/// stale answers can neither linger nor race their way back in. Clear() is
/// Invalidate for every source plus a stats reset; both are safe to call
/// while executions are running (flights are abandoned, never poisoned).
///
/// Thread-safety: every method is internally synchronized, so one cache can
/// be shared by concurrently running executions (parallel plan workers, or
/// whole plans racing in different threads). Identical in-flight sq calls
/// are deduplicated ("single-flight"): the first caller of BeginFlight for a
/// key becomes the *leader* and performs the source call; callers arriving
/// while the call is outstanding block until the leader publishes, then read
/// the memoized answer without contacting the source. If the leader's call
/// fails the flight is abandoned and one waiter is promoted to leader (a
/// failed call must not poison the key).
class SourceCallCache {
 public:
  struct Options {
    /// Byte budget across all entries; 0 = unbounded. Enforced by LRU
    /// eviction immediately after every insert.
    size_t max_bytes = 0;
    /// Entry time-to-live in seconds; 0 = never expires. Expiry is checked
    /// lazily at lookup.
    double ttl_seconds = 0.0;
  };

  /// Point-in-time counters; see the individual accessors.
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t containment_hits = 0;
    size_t evictions = 0;
    size_t invalidations = 0;
    size_t flights_deduplicated = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };

  SourceCallCache() = default;
  explicit SourceCallCache(const Options& options) : options_(options) {}

  // Cache identity matters (the executor holds a pointer); not copyable.
  SourceCallCache(const SourceCallCache&) = delete;
  SourceCallCache& operator=(const SourceCallCache&) = delete;

  /// RAII handle for one single-flight participation (sq calls). Exactly one
  /// of two states: `cached() != nullptr` (answer available, use it) or
  /// leader (cached() == nullptr): the caller must perform the source call
  /// and either Fulfill(answer) or drop the guard, which abandons the flight
  /// and lets a waiter retry.
  class FlightGuard {
   public:
    FlightGuard(FlightGuard&& other) noexcept;
    FlightGuard& operator=(FlightGuard&&) = delete;
    FlightGuard(const FlightGuard&) = delete;
    FlightGuard& operator=(const FlightGuard&) = delete;
    ~FlightGuard();

    /// The memoized answer, or null when this caller is the flight leader.
    /// The pointer is pinned by the guard (eviction cannot free it) and
    /// stays valid for the guard's lifetime.
    const ItemSet* cached() const { return cached_; }

    /// Leader only: publishes the answer and wakes all waiters. The publish
    /// is dropped (waiters still wake) if the source was invalidated after
    /// this flight began.
    void Fulfill(const ItemSet& items);

   private:
    friend class SourceCallCache;
    struct Flight;
    FlightGuard(SourceCallCache* cache,
                std::shared_ptr<const ItemSet> pinned,
                std::pair<size_t, std::string> key,
                std::shared_ptr<Flight> flight)
        : cache_(cache),
          pinned_(std::move(pinned)),
          cached_(pinned_.get()),
          key_(std::move(key)),
          flight_(std::move(flight)) {}

    SourceCallCache* cache_ = nullptr;
    std::shared_ptr<const ItemSet> pinned_;
    const ItemSet* cached_ = nullptr;
    std::pair<size_t, std::string> key_;
    std::shared_ptr<Flight> flight_;  // non-null iff this guard leads
  };

  /// Single-flight entry point for sq: returns a cache hit, or waits out
  /// another thread's identical in-flight call, or makes the caller the
  /// leader. Counts a hit when an answer is (eventually) served from the
  /// memo and a miss when the caller is told to perform the call itself.
  FlightGuard BeginFlight(size_t source, const std::string& cond_key);

  /// Containment fallback for a leading sq flight: derives sq(cond, R) from
  /// a cached lq(R) by evaluating the condition locally. Null when the
  /// relation is not cached (or local evaluation fails). Counts a
  /// containment hit on success; the caller still publishes via Fulfill so
  /// waiters and future lookups get the exact entry.
  std::shared_ptr<const ItemSet> DeriveSelect(
      size_t source, const Condition& cond,
      const std::string& merge_attribute);

  /// Answers sjq(cond, R_source, candidates) from the memo: an exact sjq
  /// entry, a same-condition sjq entry over a candidate superset, a cached
  /// sq answer, or a cached relation — in that order. Null on a miss.
  /// `*containment_derived` is set true when the answer was derived rather
  /// than stored verbatim (callers report these separately).
  std::shared_ptr<const ItemSet> FindSemiJoin(size_t source,
                                              const Condition& cond,
                                              const std::string& cond_key,
                                              const std::string& merge_attribute,
                                              const ItemSet& candidates,
                                              bool* containment_derived);

  /// Memoizes a semijoin answer with the candidate set it was computed for.
  /// Latest writer wins: candidate sets drift across plans, and the newest
  /// is the best containment anchor for the next identical query.
  void InsertSemiJoin(size_t source, std::string cond_key, ItemSet candidates,
                      ItemSet result);

  /// Returns the cached relation for lq(R_source), or null.
  std::shared_ptr<const Relation> LookupLoad(size_t source);

  /// Memoizes a loaded relation. First writer wins.
  void InsertLoad(size_t source, Relation relation);

  /// Returns the cached answer for sq(cond_key, R_source), or null. Does not
  /// wait on in-flight calls (plain memo read).
  std::shared_ptr<const ItemSet> Lookup(size_t source,
                                        const std::string& cond_key);

  /// Memoizes an sq answer. First writer wins: an existing entry is kept
  /// (identical for deterministic sources).
  void Insert(size_t source, std::string cond_key, ItemSet items);

  /// Drops every cached answer for one source and bumps its version so
  /// in-flight calls begun before the invalidation cannot publish stale
  /// answers. Safe to call concurrently with running executions.
  void Invalidate(size_t source);

  /// Invalidates every source and resets the statistics counters. Safe to
  /// call concurrently with running executions (in-flight calls complete
  /// but publish nothing).
  void Clear();

  /// Planner probes (no statistics ticked, no LRU touch): whether the memo
  /// can answer sq(cond_key, R_source) exactly / holds lq(R_source) / holds
  /// a semijoin anchor for (cond_key, R_source) — an sjq entry that answers
  /// any contained candidate set.
  bool ContainsSelect(size_t source, const std::string& cond_key) const;
  bool ContainsLoad(size_t source) const;
  bool ContainsSemiJoin(size_t source, const std::string& cond_key) const;

  /// Exact-key answers served from the memo.
  size_t hits() const;
  /// Lookups the memo could not answer exactly. Containment hits are a
  /// subset of misses: the exact key missed but the answer was still
  /// derived locally without a source call.
  size_t misses() const;
  size_t containment_hits() const;
  size_t evictions() const;
  size_t invalidations() const;
  size_t entries() const;
  size_t bytes() const;
  const Options& options() const { return options_; }
  /// Times a caller blocked on (deduplicated into) another caller's
  /// identical in-flight source call.
  size_t flights_deduplicated() const;
  Stats StatsSnapshot() const;

 private:
  enum class Kind : uint8_t { kSq = 0, kSjq = 1, kLq = 2 };

  struct Key {
    size_t source = 0;
    Kind kind = Kind::kSq;
    std::string text;  // canonical condition text; empty for lq

    bool operator<(const Key& o) const {
      if (source != o.source) return source < o.source;
      if (kind != o.kind) return kind < o.kind;
      return text < o.text;
    }
  };

  struct Entry {
    std::shared_ptr<const ItemSet> items;       // sq / sjq answers
    std::shared_ptr<const ItemSet> candidates;  // sjq only: the X it answers
    std::shared_ptr<const Relation> relation;   // lq only
    size_t bytes = 0;
    std::chrono::steady_clock::time_point expires{};  // used iff ttl > 0
    std::list<Key>::iterator lru;
  };

  /// All Locked helpers require mu_ held.
  Entry* FindLocked(const Key& key);
  void InsertLocked(Key key, Entry entry);
  void EraseLocked(std::map<Key, Entry>::iterator it);
  void EvictOverBudgetLocked();
  void TouchLocked(Entry& entry, const Key& key);
  bool ExpiredLocked(const Entry& entry) const;
  uint64_t VersionLocked(size_t source);
  void PublishGauges() const;  // requires mu_ held (reads bytes_/entries_)

  void SettleFlight(const std::pair<size_t, std::string>& key,
                    const std::shared_ptr<FlightGuard::Flight>& flight,
                    const ItemSet* items);

  Options options_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  /// Intrusive recency order, front = most recently used. Entries hold their
  /// own list iterator, so a hit is one splice.
  std::list<Key> lru_;
  /// Per-source entry versions; grown on first use of a source index.
  std::vector<uint64_t> versions_;
  std::map<std::pair<size_t, std::string>, std::shared_ptr<FlightGuard::Flight>>
      inflight_;
  size_t bytes_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t containment_hits_ = 0;
  size_t evictions_ = 0;
  size_t invalidations_ = 0;
  size_t flights_deduplicated_ = 0;
};

}  // namespace fusion

#endif  // FUSION_EXEC_SOURCE_CALL_CACHE_H_
