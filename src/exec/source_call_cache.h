#ifndef FUSION_EXEC_SOURCE_CALL_CACHE_H_
#define FUSION_EXEC_SOURCE_CALL_CACHE_H_

#include <map>
#include <string>
#include <utility>

#include "common/item_set.h"

namespace fusion {

/// Session-level memo of selection-query answers: (source index, condition
/// text) → item set. Eliminates repeated identical source queries across
/// plans and across queries — the runtime counterpart of the
/// common-subexpression elimination that Section 5 says resolution-based
/// mediators would need at plan time, and a big win for the SPJ-union
/// baseline and for repeated fusion queries against the same federation.
///
/// Staleness caveat: cached answers reflect the sources at the time of the
/// original call; autonomous sources may change. Call Clear() between
/// "sessions" or whenever freshness matters more than cost.
class SourceCallCache {
 public:
  SourceCallCache() = default;

  // Cache identity matters (the executor holds a pointer); not copyable.
  SourceCallCache(const SourceCallCache&) = delete;
  SourceCallCache& operator=(const SourceCallCache&) = delete;

  /// Returns the cached answer for sq(cond_key, R_source), or null.
  const ItemSet* Lookup(size_t source, const std::string& cond_key);

  /// Memoizes an answer (overwrites an existing entry, which must be
  /// identical for deterministic sources).
  void Insert(size_t source, std::string cond_key, ItemSet items);

  void Clear();

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t entries() const { return entries_.size(); }

 private:
  std::map<std::pair<size_t, std::string>, ItemSet> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace fusion

#endif  // FUSION_EXEC_SOURCE_CALL_CACHE_H_
