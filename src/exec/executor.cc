#include "exec/executor.h"

#include <chrono>
#include <optional>
#include <vector>

#include "exec/exec_internal.h"
#include "exec/parallel_executor.h"

namespace fusion {
namespace {

using exec_internal::CallContext;
using exec_internal::CallStats;
using exec_internal::CallWithRetries;
using exec_internal::EmulateSemiJoin;

/// Shared interpreter for eager and lazy execution. In lazy mode, variables
/// are evaluated on demand starting from the plan result, and empty
/// accumulators cut off remaining operand subtrees.
class PlanInterpreter {
 public:
  PlanInterpreter(const Plan& plan, const SourceCatalog& catalog,
                  const FusionQuery& query, const ExecOptions& options,
                  ExecutionReport& report)
      : plan_(plan),
        catalog_(catalog),
        query_(query),
        options_(options),
        report_(report) {
    report_.per_source_items.assign(catalog.size(), ItemSet());
    report_.per_op_cost.assign(plan.num_ops(), 0.0);
    items_.resize(plan.vars().size());
    relations_.resize(plan.vars().size());
    defining_op_.assign(plan.vars().size(), -1);
    for (size_t k = 0; k < plan.ops().size(); ++k) {
      defining_op_[static_cast<size_t>(plan.ops()[k].target)] =
          static_cast<int>(k);
    }
  }

  Status RunEager() {
    for (size_t k = 0; k < plan_.ops().size(); ++k) {
      FUSION_RETURN_IF_ERROR(EvalOp(k, /*lazy=*/false));
    }
    report_.answer = *items_[plan_.result()];
    ExportStats();
    return Status::Ok();
  }

  Status RunLazy() {
    FUSION_RETURN_IF_ERROR(EvalVar(plan_.result(), /*lazy=*/true));
    report_.answer = *items_[plan_.result()];
    // Everything never demanded counts as skipped, plus ops that were
    // answered locally without their source call.
    report_.skipped_ops = short_circuited_;
    for (size_t k = 0; k < plan_.ops().size(); ++k) {
      const int target = plan_.ops()[k].target;
      if (!items_[target].has_value() && !relations_[target].has_value()) {
        ++report_.skipped_ops;
      }
    }
    ExportStats();
    return Status::Ok();
  }

 private:
  void ExportStats() {
    report_.retries_total = stats_.retries;
    report_.cache_hits = stats_.cache_hits;
    report_.cache_misses = stats_.cache_misses;
  }

  /// Ensures the op defining `var` has run (recursively, in lazy mode).
  Status EvalVar(int var, bool lazy) {
    if (items_[var].has_value() || relations_[var].has_value()) {
      return Status::Ok();
    }
    return EvalOp(static_cast<size_t>(defining_op_[var]), lazy);
  }

  Status EvalOp(size_t k, bool lazy) {
    const PlanOp& op = plan_.ops()[k];
    if (items_[op.target].has_value() || relations_[op.target].has_value()) {
      return Status::Ok();
    }
    ScopedSpan span(SpanCategory::kPlanOp, PlanOpKindName(op.kind));
    if (span.active()) {
      span.AddAttr("op", static_cast<int64_t>(k));
      span.AddAttr("target", plan_.var(op.target).name);
      if (op.source >= 0) {
        span.AddAttr("source",
                     catalog_.source(static_cast<size_t>(op.source)).name());
      }
      if (op.cond >= 0) span.AddAttr("cond", static_cast<int64_t>(op.cond));
    }
    // Attribute only this op's direct charges: nested evaluations (lazy
    // mode) book their own costs, which `attributed_` subtracts out.
    const double unattributed_before = report_.ledger.total() - attributed_;
    FUSION_RETURN_IF_ERROR(EvalOpBody(op, lazy));
    const double own_cost =
        (report_.ledger.total() - attributed_) - unattributed_before;
    report_.per_op_cost[k] = own_cost;
    attributed_ += own_cost;
    span.AddAttr("cost", own_cost);
    exec_internal::SleepForCost(own_cost, options_);
    return Status::Ok();
  }

  Status EvalOpBody(const PlanOp& op, bool lazy) {
    switch (op.kind) {
      case PlanOpKind::kSelect: {
        SourceWrapper& src = catalog_.source(static_cast<size_t>(op.source));
        const Condition& cond =
            query_.conditions()[static_cast<size_t>(op.cond)];
        // Cache consultation, single-flight dedup, retries, and memo
        // publication all live in CachedSelect (shared with the parallel
        // executor). Cache hits charge nothing; witness knowledge stays
        // valid either way.
        FUSION_ASSIGN_OR_RETURN(
            ItemSet result,
            exec_internal::CachedSelect(src, static_cast<size_t>(op.source),
                                        cond, query_.merge_attribute(),
                                        options_, report_.ledger, &stats_));
        Observe(op.source, result);
        items_[op.target] = std::move(result);
        break;
      }
      case PlanOpKind::kSemiJoin: {
        if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(op.input, lazy));
        const ItemSet& candidates = *items_[op.input];
        if (lazy && candidates.empty()) {
          items_[op.target] = ItemSet();  // ∅ semijoin needs no source call
          ++short_circuited_;
          break;
        }
        SourceWrapper& src = catalog_.source(static_cast<size_t>(op.source));
        const Condition& cond =
            query_.conditions()[static_cast<size_t>(op.cond)];
        switch (src.capabilities().semijoin) {
          case SemijoinSupport::kNative: {
            CallContext ctx;
            ctx.op = "sjq";
            ctx.source_name = &src.name();
            ctx.ledger = &report_.ledger;
            ctx.stats = &stats_;
            FUSION_ASSIGN_OR_RETURN(
                ItemSet result,
                CallWithRetries(
                    [&] {
                      return src.SemiJoin(cond, query_.merge_attribute(),
                                          candidates, &report_.ledger);
                    },
                    options_.max_attempts, ctx));
            Observe(op.source, result);
            items_[op.target] = std::move(result);
            break;
          }
          case SemijoinSupport::kPassedBindingsOnly: {
            FUSION_ASSIGN_OR_RETURN(
                ItemSet result,
                EmulateSemiJoin(src, cond, query_.merge_attribute(),
                                candidates, options_.max_attempts,
                                report_.ledger, &stats_));
            Observe(op.source, result);
            items_[op.target] = std::move(result);
            ++report_.emulated_semijoins;
            static Counter& emulated = MetricsRegistry::Global().counter(
                metrics::kEmulatedSemijoins);
            emulated.Increment();
            break;
          }
          case SemijoinSupport::kUnsupported:
            return Status::Unsupported(
                "plan issues a semijoin to source '" + src.name() +
                "', which cannot process semijoins even by emulation");
        }
        break;
      }
      case PlanOpKind::kLoad: {
        SourceWrapper& src = catalog_.source(static_cast<size_t>(op.source));
        CallContext ctx;
        ctx.op = "lq";
        ctx.source_name = &src.name();
        ctx.ledger = &report_.ledger;
        ctx.stats = &stats_;
        FUSION_ASSIGN_OR_RETURN(
            Relation loaded,
            CallWithRetries([&] { return src.Load(&report_.ledger); },
                            options_.max_attempts, ctx));
        FUSION_ASSIGN_OR_RETURN(
            ItemSet all_items,
            loaded.SelectItems(Condition::True(), query_.merge_attribute()));
        Observe(op.source, all_items);
        relations_[op.target] = std::move(loaded);
        break;
      }
      case PlanOpKind::kLocalSelect: {
        if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(op.input, lazy));
        if (!relations_[op.input].has_value()) {
          return Status::Internal("local select over unloaded relation var");
        }
        FUSION_ASSIGN_OR_RETURN(
            ItemSet result,
            relations_[op.input]->SelectItems(
                query_.conditions()[static_cast<size_t>(op.cond)],
                query_.merge_attribute()));
        items_[op.target] = std::move(result);
        break;
      }
      case PlanOpKind::kUnion: {
        ItemSet acc;
        for (int v : op.inputs) {
          if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(v, lazy));
          acc = ItemSet::Union(acc, *items_[v]);
        }
        items_[op.target] = std::move(acc);
        break;
      }
      case PlanOpKind::kIntersect: {
        std::optional<ItemSet> acc;
        for (int v : op.inputs) {
          if (lazy && acc.has_value() && acc->empty()) {
            break;  // sound cut: ∅ ∩ anything = ∅; skip remaining subtrees
          }
          if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(v, lazy));
          acc = acc.has_value() ? ItemSet::Intersect(*acc, *items_[v])
                                : *items_[v];
        }
        items_[op.target] = std::move(*acc);
        break;
      }
      case PlanOpKind::kDifference: {
        if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(op.inputs[0], lazy));
        const ItemSet& lhs = *items_[op.inputs[0]];
        if (lazy && lhs.empty()) {
          items_[op.target] = ItemSet();  // ∅ − X = ∅; skip rhs subtree
          break;
        }
        if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(op.inputs[1], lazy));
        items_[op.target] = ItemSet::Difference(lhs, *items_[op.inputs[1]]);
        break;
      }
    }
    return Status::Ok();
  }

  void Observe(int source, const ItemSet& received) {
    ItemSet& known = report_.per_source_items[static_cast<size_t>(source)];
    known = ItemSet::Union(known, received);
  }

  const Plan& plan_;
  const SourceCatalog& catalog_;
  const FusionQuery& query_;
  const ExecOptions& options_;
  ExecutionReport& report_;
  std::vector<std::optional<ItemSet>> items_;
  std::vector<std::optional<Relation>> relations_;
  std::vector<int> defining_op_;
  size_t short_circuited_ = 0;
  double attributed_ = 0.0;  // ledger cost already assigned to some op
  CallStats stats_;  // per-execution retry/cache counters
};

}  // namespace

Result<ExecutionReport> ExecutePlan(const Plan& plan,
                                    const SourceCatalog& catalog,
                                    const FusionQuery& query,
                                    const ExecOptions& options) {
  FUSION_RETURN_IF_ERROR(plan.Validate(query.num_conditions(), catalog.size()));
  ExecutionReport report;
  Tracer& tracer = Tracer::Global();
  report.trace.enabled = tracer.enabled();
  report.trace.start_us = tracer.NowMicros();
  const auto start = std::chrono::steady_clock::now();
  if (options.parallelism > 1 && !options.lazy_short_circuit) {
    FUSION_RETURN_IF_ERROR(
        ExecutePlanParallel(plan, catalog, query, options, report));
  } else {
    // parallelism == 1, or lazy mode: demand-driven evaluation is
    // inherently serial (its payoff is skipping work, not overlapping it).
    PlanInterpreter interpreter(plan, catalog, query, options, report);
    FUSION_RETURN_IF_ERROR(options.lazy_short_circuit ? interpreter.RunLazy()
                                                      : interpreter.RunEager());
  }
  report.wall_clock_makespan =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.trace.end_us = tracer.NowMicros();
  return report;
}

Result<ExecutionReport> ExecutePlan(const Plan& plan,
                                    const SourceCatalog& catalog,
                                    const FusionQuery& query) {
  return ExecutePlan(plan, catalog, query, ExecOptions{});
}

}  // namespace fusion
