#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <vector>

#include "exec/exec_internal.h"
#include "exec/parallel_executor.h"
#include "exec/source_health.h"

namespace fusion {
namespace {

using exec_internal::CallContext;
using exec_internal::CallStats;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash. Used for retry
/// jitter so the schedule is a pure function of (seed, source, attempt) —
/// no RNG stream, hence no dependence on thread interleaving.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::BackoffSeconds(size_t source_index, int attempt) const {
  if (attempt < 1 || initial_backoff_seconds <= 0.0) return 0.0;
  double backoff = initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) backoff *= backoff_multiplier;
  if (max_backoff_seconds > 0.0 && backoff > max_backoff_seconds) {
    backoff = max_backoff_seconds;
  }
  if (jitter_fraction > 0.0) {
    uint64_t h = SplitMix64(jitter_seed);
    h = SplitMix64(h ^ static_cast<uint64_t>(source_index));
    h = SplitMix64(h ^ static_cast<uint64_t>(attempt));
    // Top 53 bits → uniform in [0, 1), then map into the symmetric band
    // [1 - jitter, 1 + jitter).
    const double unit =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    backoff *= 1.0 - jitter_fraction + 2.0 * jitter_fraction * unit;
  }
  return backoff;
}

std::vector<int> CompletenessReport::ExcludedSources(int condition) const {
  std::vector<int> sources;
  for (const SourceExclusion& e : excluded) {
    if (e.condition != condition) continue;
    if (std::find(sources.begin(), sources.end(), e.source) == sources.end()) {
      sources.push_back(e.source);
    }
  }
  return sources;
}

std::string CompletenessReport::ToString(
    const std::vector<std::string>& condition_names,
    const std::vector<std::string>& source_names) const {
  if (answer_complete) return "complete answer (no sources excluded)";
  auto cond_text = [&](int c) {
    if (c < 0) return std::string("whole query");
    if (static_cast<size_t>(c) < condition_names.size()) {
      return condition_names[static_cast<size_t>(c)];
    }
    return "c" + std::to_string(c + 1);
  };
  auto source_text = [&](int s) {
    if (s >= 0 && static_cast<size_t>(s) < source_names.size()) {
      return source_names[static_cast<size_t>(s)];
    }
    return "R" + std::to_string(s + 1);
  };
  std::string out =
      "partial answer (sound: every returned item satisfies the query at "
      "some responding source)\n";
  for (const SourceExclusion& e : excluded) {
    out += "  excluded " + source_text(e.source) + " from " +
           cond_text(e.condition) + ": " + e.reason + "\n";
  }
  return out;
}

Status ValidateExecOptions(const ExecOptions& options) {
  const RetryPolicy& retry = options.retry;
  if (retry.max_attempts < 1) {
    return Status::InvalidArgument(
        "retry.max_attempts must be >= 1, got " +
        std::to_string(retry.max_attempts));
  }
  if (retry.initial_backoff_seconds < 0.0) {
    return Status::InvalidArgument("retry.initial_backoff_seconds < 0");
  }
  if (retry.backoff_multiplier < 1.0) {
    return Status::InvalidArgument("retry.backoff_multiplier must be >= 1");
  }
  if (retry.max_backoff_seconds < 0.0) {
    return Status::InvalidArgument("retry.max_backoff_seconds < 0");
  }
  if (retry.jitter_fraction < 0.0 || retry.jitter_fraction >= 1.0) {
    return Status::InvalidArgument(
        "retry.jitter_fraction must be in [0, 1)");
  }
  if (retry.call_timeout_seconds < 0.0) {
    return Status::InvalidArgument("retry.call_timeout_seconds < 0");
  }
  if (options.deadline_seconds < 0.0) {
    return Status::InvalidArgument("deadline_seconds < 0");
  }
  if (options.cost_budget < 0.0) {
    return Status::InvalidArgument("cost_budget < 0");
  }
  if (options.parallelism < 1) {
    return Status::InvalidArgument("parallelism must be >= 1, got " +
                                   std::to_string(options.parallelism));
  }
  if (options.simulated_seconds_per_cost < 0.0) {
    return Status::InvalidArgument("simulated_seconds_per_cost < 0");
  }
  return Status::Ok();
}

namespace {

/// Shared interpreter for eager and lazy execution. In lazy mode, variables
/// are evaluated on demand starting from the plan result, and empty
/// accumulators cut off remaining operand subtrees.
class PlanInterpreter {
 public:
  PlanInterpreter(const Plan& plan, const SourceCatalog& catalog,
                  const FusionQuery& query, const ExecOptions& options,
                  exec_internal::FaultState* fault, ExecutionReport& report)
      : plan_(plan),
        catalog_(catalog),
        query_(query),
        options_(options),
        fault_(fault),
        report_(report) {
    report_.per_source_items.assign(catalog.size(), ItemSet());
    report_.per_op_cost.assign(plan.num_ops(), 0.0);
    report_.per_op_seconds.assign(plan.num_ops(), 0.0);
    report_.per_op_cache.assign(plan.num_ops(), '-');
    items_.resize(plan.vars().size());
    relations_.resize(plan.vars().size());
    defining_op_.assign(plan.vars().size(), -1);
    for (size_t k = 0; k < plan.ops().size(); ++k) {
      defining_op_[static_cast<size_t>(plan.ops()[k].target)] =
          static_cast<int>(k);
    }
    reasons_.assign(plan.num_ops(), "");
    if (options.on_source_failure == SourceFailurePolicy::kDegrade) {
      degradable_ = exec_internal::DegradableOps(plan);
    }
  }

  Status RunEager() {
    for (size_t k = 0; k < plan_.ops().size(); ++k) {
      FUSION_RETURN_IF_ERROR(EvalOp(k, /*lazy=*/false));
    }
    report_.answer = *items_[plan_.result()];
    ExportStats();
    return Status::Ok();
  }

  Status RunLazy() {
    FUSION_RETURN_IF_ERROR(EvalVar(plan_.result(), /*lazy=*/true));
    report_.answer = *items_[plan_.result()];
    // Everything never demanded counts as skipped, plus ops that were
    // answered locally without their source call.
    report_.skipped_ops = short_circuited_;
    for (size_t k = 0; k < plan_.ops().size(); ++k) {
      const int target = plan_.ops()[k].target;
      if (!items_[target].has_value() && !relations_[target].has_value()) {
        ++report_.skipped_ops;
      }
    }
    ExportStats();
    return Status::Ok();
  }

 private:
  void ExportStats() {
    report_.retries_total = stats_.retries;
    report_.cache_hits = stats_.cache_hits;
    report_.cache_misses = stats_.cache_misses;
    report_.cache_containment_hits = stats_.cache_containment_hits;
    report_.breaker_fast_fails = stats_.breaker_fast_fails;
    report_.semijoin_probes_skipped = stats_.semijoin_probes_skipped;
    exec_internal::BuildCompletenessReport(plan_, reasons_,
                                           &report_.completeness);
  }

  /// The fault-tolerance call context for op k's source interactions.
  /// CachedSelect / EmulateSemiJoin override op/source_name/ledger.
  CallContext ContextFor(const char* op_name, const SourceWrapper& src,
                         int source) {
    CallContext ctx;
    ctx.op = op_name;
    ctx.source_name = &src.name();
    ctx.ledger = &report_.ledger;
    ctx.stats = &stats_;
    ctx.retry = &options_.retry;
    ctx.fault = fault_;
    ctx.health = options_.health;
    ctx.source_index = source;
    return ctx;
  }

  /// Degraded-mode absorption of an exhausted source call: substitutes ∅
  /// (or an empty relation) for op k and records the exclusion when that is
  /// provably sound; otherwise returns `status`, failing the query.
  Status HandleSourceFailure(size_t k, const PlanOp& op, const Status& status) {
    if (options_.on_source_failure != SourceFailurePolicy::kDegrade ||
        degradable_.empty() || degradable_[k] == 0 ||
        !exec_internal::IsDegradableFailure(status)) {
      return status;
    }
    reasons_[k] = status.ToString();
    if (op.kind == PlanOpKind::kLoad) {
      relations_[op.target] = Relation(
          catalog_.source(static_cast<size_t>(op.source)).schema());
    } else {
      items_[op.target] = ItemSet();
    }
    return Status::Ok();
  }

  /// Ensures the op defining `var` has run (recursively, in lazy mode).
  Status EvalVar(int var, bool lazy) {
    if (items_[var].has_value() || relations_[var].has_value()) {
      return Status::Ok();
    }
    return EvalOp(static_cast<size_t>(defining_op_[var]), lazy);
  }

  Status EvalOp(size_t k, bool lazy) {
    const PlanOp& op = plan_.ops()[k];
    if (items_[op.target].has_value() || relations_[op.target].has_value()) {
      return Status::Ok();
    }
    ScopedSpan span(SpanCategory::kPlanOp, PlanOpKindName(op.kind));
    if (span.active()) {
      span.AddAttr("op", static_cast<int64_t>(k));
      span.AddAttr("target", plan_.var(op.target).name);
      if (op.source >= 0) {
        span.AddAttr("source",
                     catalog_.source(static_cast<size_t>(op.source)).name());
      }
      if (op.cond >= 0) span.AddAttr("cond", static_cast<int64_t>(op.cond));
    }
    // Attribute only this op's direct charges: nested evaluations (lazy
    // mode) book their own costs, which `attributed_` subtracts out. Time
    // and cache interactions use the same subtraction so EXPLAIN's per-op
    // annotations stay child-exclusive too.
    const double unattributed_before = report_.ledger.total() - attributed_;
    const double attr_secs_before = attributed_seconds_;
    const size_t hits_before = stats_.cache_hits;
    const size_t misses_before = stats_.cache_misses;
    const size_t containment_before = stats_.cache_containment_hits;
    const size_t attr_hits_before = attributed_hits_;
    const size_t attr_misses_before = attributed_misses_;
    const size_t attr_containment_before = attributed_containment_;
    const auto op_start = std::chrono::steady_clock::now();
    FUSION_RETURN_IF_ERROR(EvalOpBody(k, op, lazy));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      op_start)
            .count();
    report_.per_op_seconds[k] =
        elapsed - (attributed_seconds_ - attr_secs_before);
    attributed_seconds_ = attr_secs_before + elapsed;
    const size_t own_hits = (stats_.cache_hits - hits_before) -
                            (attributed_hits_ - attr_hits_before);
    const size_t own_misses = (stats_.cache_misses - misses_before) -
                              (attributed_misses_ - attr_misses_before);
    const size_t own_containment =
        (stats_.cache_containment_hits - containment_before) -
        (attributed_containment_ - attr_containment_before);
    attributed_hits_ = attr_hits_before + (stats_.cache_hits - hits_before);
    attributed_misses_ =
        attr_misses_before + (stats_.cache_misses - misses_before);
    attributed_containment_ =
        attr_containment_before +
        (stats_.cache_containment_hits - containment_before);
    // Containment hits are double-counted inside misses (the exact key did
    // miss), so a "real" miss is a miss beyond the containment count.
    if (own_misses > own_containment) {
      report_.per_op_cache[k] = 'm';
    } else if (own_containment > 0) {
      report_.per_op_cache[k] = 'c';
    } else if (own_hits > 0) {
      report_.per_op_cache[k] = 'h';
    }
    const double own_cost =
        (report_.ledger.total() - attributed_) - unattributed_before;
    report_.per_op_cost[k] = own_cost;
    attributed_ += own_cost;
    span.AddAttr("cost", own_cost);
    if (!reasons_[k].empty()) span.AddAttr("degraded", reasons_[k]);
    exec_internal::SleepForCost(own_cost, options_);
    return Status::Ok();
  }

  Status EvalOpBody(size_t k, const PlanOp& op, bool lazy) {
    switch (op.kind) {
      case PlanOpKind::kSelect: {
        SourceWrapper& src = catalog_.source(static_cast<size_t>(op.source));
        const Condition& cond =
            query_.conditions()[static_cast<size_t>(op.cond)];
        // Cache consultation, single-flight dedup, retries, and memo
        // publication all live in CachedSelect (shared with the parallel
        // executor). Cache hits charge nothing; witness knowledge stays
        // valid either way.
        Result<ItemSet> result = exec_internal::CachedSelect(
            src, cond, query_.merge_attribute(), options_, report_.ledger,
            ContextFor("sq", src, op.source));
        if (!result.ok()) return HandleSourceFailure(k, op, result.status());
        Observe(op.source, *result);
        items_[op.target] = std::move(result).value();
        break;
      }
      case PlanOpKind::kSemiJoin: {
        if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(op.input, lazy));
        const ItemSet& candidates = *items_[op.input];
        if (lazy && candidates.empty()) {
          items_[op.target] = ItemSet();  // ∅ semijoin needs no source call
          ++short_circuited_;
          break;
        }
        SourceWrapper& src = catalog_.source(static_cast<size_t>(op.source));
        const Condition& cond =
            query_.conditions()[static_cast<size_t>(op.cond)];
        // Cache lookup (exact or containment-derived), capability dispatch
        // (native / emulated / unsupported), and memo publication all live
        // in CachedSemiJoin (shared with the parallel executor).
        bool emulated = false;
        Result<ItemSet> result = exec_internal::CachedSemiJoin(
            src, cond, query_.merge_attribute(), candidates, options_,
            report_.ledger, ContextFor("sjq", src, op.source), &emulated);
        if (!result.ok()) {
          return HandleSourceFailure(k, op, result.status());
        }
        Observe(op.source, *result);
        items_[op.target] = std::move(result).value();
        if (emulated) {
          ++report_.emulated_semijoins;
          static Counter& counter =
              MetricsRegistry::Global().counter(metrics::kEmulatedSemijoins);
          counter.Increment();
        }
        break;
      }
      case PlanOpKind::kLoad: {
        SourceWrapper& src = catalog_.source(static_cast<size_t>(op.source));
        Result<Relation> loaded = exec_internal::CachedLoad(
            src, options_, report_.ledger, ContextFor("lq", src, op.source));
        if (!loaded.ok()) return HandleSourceFailure(k, op, loaded.status());
        FUSION_ASSIGN_OR_RETURN(
            ItemSet all_items,
            loaded->SelectItems(Condition::True(), query_.merge_attribute()));
        Observe(op.source, all_items);
        relations_[op.target] = std::move(loaded).value();
        break;
      }
      case PlanOpKind::kLocalSelect: {
        if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(op.input, lazy));
        if (!relations_[op.input].has_value()) {
          return Status::Internal("local select over unloaded relation var");
        }
        FUSION_ASSIGN_OR_RETURN(
            ItemSet result,
            relations_[op.input]->SelectItems(
                query_.conditions()[static_cast<size_t>(op.cond)],
                query_.merge_attribute()));
        items_[op.target] = std::move(result);
        break;
      }
      case PlanOpKind::kUnion: {
        ItemSet acc;
        for (int v : op.inputs) {
          if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(v, lazy));
          acc.UnionInPlace(*items_[v]);
        }
        items_[op.target] = std::move(acc);
        break;
      }
      case PlanOpKind::kIntersect: {
        std::optional<ItemSet> acc;
        for (int v : op.inputs) {
          if (lazy && acc.has_value() && acc->empty()) {
            break;  // sound cut: ∅ ∩ anything = ∅; skip remaining subtrees
          }
          if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(v, lazy));
          acc = acc.has_value() ? ItemSet::Intersect(*acc, *items_[v])
                                : *items_[v];
        }
        items_[op.target] = std::move(*acc);
        break;
      }
      case PlanOpKind::kDifference: {
        if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(op.inputs[0], lazy));
        const ItemSet& lhs = *items_[op.inputs[0]];
        if (lazy && lhs.empty()) {
          items_[op.target] = ItemSet();  // ∅ − X = ∅; skip rhs subtree
          break;
        }
        if (lazy) FUSION_RETURN_IF_ERROR(EvalVar(op.inputs[1], lazy));
        items_[op.target] = ItemSet::Difference(lhs, *items_[op.inputs[1]]);
        break;
      }
    }
    return Status::Ok();
  }

  void Observe(int source, const ItemSet& received) {
    report_.per_source_items[static_cast<size_t>(source)].UnionInPlace(
        received);
  }

  const Plan& plan_;
  const SourceCatalog& catalog_;
  const FusionQuery& query_;
  const ExecOptions& options_;
  exec_internal::FaultState* fault_;
  ExecutionReport& report_;
  std::vector<std::optional<ItemSet>> items_;
  std::vector<std::optional<Relation>> relations_;
  std::vector<int> defining_op_;
  size_t short_circuited_ = 0;
  double attributed_ = 0.0;  // ledger cost already assigned to some op
  // Per-op attribution state for EXPLAIN: elapsed time and cache
  // interactions already assigned to some (nested) op.
  double attributed_seconds_ = 0.0;
  size_t attributed_hits_ = 0;
  size_t attributed_misses_ = 0;
  size_t attributed_containment_ = 0;
  CallStats stats_;  // per-execution retry/cache/breaker counters
  std::vector<char> degradable_;     // empty unless on_source_failure=kDegrade
  std::vector<std::string> reasons_;  // non-empty iff op was ∅-substituted
};

}  // namespace

Result<ExecutionReport> ExecutePlan(const Plan& plan,
                                    const SourceCatalog& catalog,
                                    const FusionQuery& query,
                                    const ExecOptions& options) {
  FUSION_RETURN_IF_ERROR(ValidateExecOptions(options));
  FUSION_RETURN_IF_ERROR(plan.Validate(query.num_conditions(), catalog.size()));
  ExecutionReport report;
  Tracer& tracer = Tracer::Global();
  report.trace.enabled = tracer.enabled();
  report.trace.start_us = tracer.NowMicros();
  const auto start = std::chrono::steady_clock::now();
  // One fault state per execution: the deadline clock starts here, and the
  // cost budget covers every ledger (all ops, failed attempts included).
  exec_internal::FaultState fault(options);
  if (options.parallelism > 1 && !options.lazy_short_circuit) {
    FUSION_RETURN_IF_ERROR(
        ExecutePlanParallel(plan, catalog, query, options, &fault, report));
  } else {
    // parallelism == 1, or lazy mode: demand-driven evaluation is
    // inherently serial (its payoff is skipping work, not overlapping it).
    PlanInterpreter interpreter(plan, catalog, query, options, &fault, report);
    FUSION_RETURN_IF_ERROR(options.lazy_short_circuit ? interpreter.RunLazy()
                                                      : interpreter.RunEager());
  }
  report.wall_clock_makespan =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.trace.end_us = tracer.NowMicros();
  return report;
}

Result<ExecutionReport> ExecutePlan(const Plan& plan,
                                    const SourceCatalog& catalog,
                                    const FusionQuery& query) {
  return ExecutePlan(plan, catalog, query, ExecOptions{});
}

}  // namespace fusion
