#include "exec/source_health.h"

#include "obs/metrics.h"

namespace fusion {

SourceHealth::Breaker& SourceHealth::BreakerFor(size_t source) {
  if (source >= breakers_.size()) breakers_.resize(source + 1);
  return breakers_[source];
}

void SourceHealth::PublishState(const Breaker& breaker,
                                const std::string* source_name) {
  if (source_name == nullptr) return;
  MetricsRegistry::Global()
      .gauge(metrics::BreakerStateGaugeName(*source_name))
      .Set(static_cast<double>(breaker.state));
}

SourceHealth::Admission SourceHealth::Admit(size_t source,
                                            const std::string* source_name) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = BreakerFor(source);
  switch (b.state) {
    case BreakerState::kClosed:
      return {true, false};
    case BreakerState::kHalfOpen:
      // The probe slot is taken; everyone else keeps failing fast until the
      // probe settles (no stampede on a barely-recovered source).
      break;
    case BreakerState::kOpen:
      if (++b.rejections_since_open > options_.open_cooldown_rejections) {
        b.state = BreakerState::kHalfOpen;
        b.probe_in_flight = true;
        PublishState(b, source_name);
        return {true, true};
      }
      break;
  }
  ++b.fast_fails;
  static Counter& fast_fails =
      MetricsRegistry::Global().counter(metrics::kBreakerFastFailsTotal);
  fast_fails.Increment();
  return {false, false};
}

void SourceHealth::RecordSuccess(size_t source,
                                 const std::string* source_name) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = BreakerFor(source);
  b.consecutive_failures = 0;
  if (b.state != BreakerState::kClosed) {
    b.state = BreakerState::kClosed;
    b.probe_in_flight = false;
    b.rejections_since_open = 0;
    PublishState(b, source_name);
  }
}

void SourceHealth::RecordFailure(size_t source,
                                 const std::string* source_name) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = BreakerFor(source);
  switch (b.state) {
    case BreakerState::kClosed:
      if (++b.consecutive_failures >= options_.failure_threshold) {
        b.state = BreakerState::kOpen;
        b.rejections_since_open = 0;
        static Counter& opens =
            MetricsRegistry::Global().counter(metrics::kBreakerOpensTotal);
        opens.Increment();
        PublishState(b, source_name);
      }
      break;
    case BreakerState::kHalfOpen:
      // The probe failed: back to a full cool-down.
      b.state = BreakerState::kOpen;
      b.probe_in_flight = false;
      b.rejections_since_open = 0;
      PublishState(b, source_name);
      break;
    case BreakerState::kOpen:
      break;  // late failure report from a call admitted before opening
  }
}

SourceHealth::BreakerState SourceHealth::state(size_t source) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (source >= breakers_.size()) return BreakerState::kClosed;
  return breakers_[source].state;
}

int SourceHealth::consecutive_failures(size_t source) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (source >= breakers_.size()) return 0;
  return breakers_[source].consecutive_failures;
}

size_t SourceHealth::fast_fails(size_t source) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (source >= breakers_.size()) return 0;
  return breakers_[source].fast_fails;
}

void SourceHealth::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  breakers_.clear();
}

}  // namespace fusion
