#include "exec/source_call_cache.h"

namespace fusion {

const ItemSet* SourceCallCache::Lookup(size_t source,
                                       const std::string& cond_key) {
  auto it = entries_.find({source, cond_key});
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void SourceCallCache::Insert(size_t source, std::string cond_key,
                             ItemSet items) {
  entries_[{source, std::move(cond_key)}] = std::move(items);
}

void SourceCallCache::Clear() {
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace fusion
