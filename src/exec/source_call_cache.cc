#include "exec/source_call_cache.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusion {

namespace {

/// Fixed per-entry overhead charged against the byte budget on top of the
/// payload: map/list node headers, the Entry struct, control blocks. An
/// estimate — the budget is about bounding growth, not allocator accounting.
constexpr size_t kEntryOverhead = 128;

}  // namespace

/// Rendezvous state for one in-flight source call. `settled` flips exactly
/// once — when the leader fulfills or abandons — and waiters re-check the
/// memo under the cache mutex afterwards. `version` snapshots the source's
/// invalidation epoch at flight creation: a publish under a newer epoch is
/// dropped, so an answer fetched before Invalidate() cannot resurrect.
struct SourceCallCache::FlightGuard::Flight {
  std::condition_variable cv;
  bool settled = false;
  uint64_t version = 0;
};

SourceCallCache::FlightGuard::FlightGuard(FlightGuard&& other) noexcept
    : cache_(other.cache_),
      pinned_(std::move(other.pinned_)),
      cached_(other.cached_),
      key_(std::move(other.key_)),
      flight_(std::move(other.flight_)) {
  other.cache_ = nullptr;
  other.cached_ = nullptr;
}

SourceCallCache::FlightGuard::~FlightGuard() {
  if (cache_ != nullptr && flight_ != nullptr) {
    // Leader bailed without publishing (the call failed): abandon the flight
    // so a waiter can be promoted and retry the call itself.
    cache_->SettleFlight(key_, flight_, nullptr);
  }
}

void SourceCallCache::FlightGuard::Fulfill(const ItemSet& items) {
  if (cache_ == nullptr || flight_ == nullptr) return;
  cache_->SettleFlight(key_, flight_, &items);
  flight_.reset();
}

uint64_t SourceCallCache::VersionLocked(size_t source) {
  if (source >= versions_.size()) versions_.resize(source + 1, 0);
  return versions_[source];
}

bool SourceCallCache::ExpiredLocked(const Entry& entry) const {
  return options_.ttl_seconds > 0.0 &&
         std::chrono::steady_clock::now() >= entry.expires;
}

SourceCallCache::Entry* SourceCallCache::FindLocked(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (ExpiredLocked(it->second)) {
    ++evictions_;
    static Counter& evictions =
        MetricsRegistry::Global().counter(metrics::kCacheEvictions);
    evictions.Increment();
    EraseLocked(it);
    PublishGauges();
    return nullptr;
  }
  return &it->second;
}

void SourceCallCache::TouchLocked(Entry& entry, const Key& /*key*/) {
  lru_.splice(lru_.begin(), lru_, entry.lru);
}

void SourceCallCache::EraseLocked(std::map<Key, Entry>::iterator it) {
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru);
  entries_.erase(it);
}

void SourceCallCache::EvictOverBudgetLocked() {
  static Counter& evictions =
      MetricsRegistry::Global().counter(metrics::kCacheEvictions);
  while (options_.max_bytes > 0 && bytes_ > options_.max_bytes &&
         !lru_.empty()) {
    // Coldest first; a just-inserted entry larger than the whole budget
    // evicts itself — the budget is a hard invariant, not advisory.
    auto it = entries_.find(lru_.back());
    ++evictions_;
    evictions.Increment();
    EraseLocked(it);
  }
}

void SourceCallCache::InsertLocked(Key key, Entry entry) {
  entry.bytes += key.text.size() + kEntryOverhead;
  if (options_.ttl_seconds > 0.0) {
    entry.expires = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(options_.ttl_seconds));
  }
  lru_.push_front(key);
  entry.lru = lru_.begin();
  bytes_ += entry.bytes;
  entries_.emplace(std::move(key), std::move(entry));
  EvictOverBudgetLocked();
  PublishGauges();
}

void SourceCallCache::PublishGauges() const {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Gauge& bytes = registry.gauge(metrics::kCacheBytes);
  static Gauge& entries = registry.gauge(metrics::kCacheEntries);
  bytes.Set(static_cast<double>(bytes_));
  entries.Set(static_cast<double>(entries_.size()));
}

SourceCallCache::FlightGuard SourceCallCache::BeginFlight(
    size_t source, const std::string& cond_key) {
  std::pair<size_t, std::string> flight_key{source, cond_key};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (Entry* hit = FindLocked(Key{source, Kind::kSq, cond_key});
        hit != nullptr) {
      ++hits_;
      TouchLocked(*hit, Key{});
      return FlightGuard(this, hit->items, std::move(flight_key), nullptr);
    }
    auto it = inflight_.find(flight_key);
    if (it == inflight_.end()) {
      auto flight = std::make_shared<FlightGuard::Flight>();
      flight->version = VersionLocked(source);
      inflight_.emplace(flight_key, flight);
      ++misses_;
      return FlightGuard(this, nullptr, std::move(flight_key),
                         std::move(flight));
    }
    // Someone else is already asking the source this exact question; wait
    // for their answer instead of issuing a duplicate call. (Tracer::Record
    // only takes its own shard mutex, so spanning the wait while holding
    // mu_ cannot deadlock.)
    ++flights_deduplicated_;
    static Counter& waits =
        MetricsRegistry::Global().counter(metrics::kCacheFlightWaits);
    waits.Increment();
    ScopedSpan span(SpanCategory::kCache, "cache.wait");
    if (span.active()) span.AddAttr("cond", flight_key.second);
    std::shared_ptr<FlightGuard::Flight> flight = it->second;
    flight->cv.wait(lock, [&] { return flight->settled; });
    // Loop: on fulfill the memo now hits; on abandon (or a dropped stale
    // publish) this caller competes for leadership of a fresh flight.
  }
}

void SourceCallCache::SettleFlight(
    const std::pair<size_t, std::string>& key,
    const std::shared_ptr<FlightGuard::Flight>& flight, const ItemSet* items) {
  std::unique_lock<std::mutex> lock(mu_);
  // Publish only when the source's version still matches the one this
  // flight launched under — Invalidate()/Clear() in between means the
  // answer may be stale, so it is discarded (waiters retry fresh).
  if (items != nullptr && VersionLocked(key.first) == flight->version) {
    Key cache_key{key.first, Kind::kSq, key.second};
    if (entries_.find(cache_key) == entries_.end()) {  // first writer wins
      Entry entry;
      entry.items = std::make_shared<const ItemSet>(*items);
      entry.bytes = entry.items->ApproxBytes();
      InsertLocked(std::move(cache_key), std::move(entry));
    }
  }
  auto it = inflight_.find(key);
  if (it != inflight_.end() && it->second == flight) {
    inflight_.erase(it);
  }
  flight->settled = true;
  flight->cv.notify_all();
}

std::shared_ptr<const ItemSet> SourceCallCache::DeriveSelect(
    size_t source, const Condition& cond, const std::string& merge_attribute) {
  std::shared_ptr<const Relation> relation;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Entry* entry = FindLocked(Key{source, Kind::kLq, ""});
    if (entry == nullptr) return nullptr;
    relation = entry->relation;
    TouchLocked(*entry, Key{});
  }
  // Local evaluation happens outside the lock: it scans the whole relation,
  // and the relation is immutable once cached.
  Result<ItemSet> selected = relation->SelectItems(cond, merge_attribute);
  if (!selected.ok()) return nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++containment_hits_;
  }
  return std::make_shared<const ItemSet>(std::move(selected).value());
}

std::shared_ptr<const ItemSet> SourceCallCache::FindSemiJoin(
    size_t source, const Condition& cond, const std::string& cond_key,
    const std::string& merge_attribute, const ItemSet& candidates,
    bool* containment_derived) {
  *containment_derived = false;
  std::shared_ptr<const Relation> relation;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (Entry* entry = FindLocked(Key{source, Kind::kSjq, cond_key});
        entry != nullptr && entry->candidates != nullptr &&
        candidates.IsSubsetOf(*entry->candidates)) {
      TouchLocked(*entry, Key{});
      if (candidates.size() == entry->candidates->size()) {
        // Subset of equal size = the very same candidate set: exact hit.
        ++hits_;
        return entry->items;
      }
      // sjq(c, R, X) with X ⊆ Y from the cached sjq(c, R, Y): the stored
      // answer is sq(c, R) ∩ Y, so intersecting with X yields sq(c, R) ∩ X.
      ++misses_;
      ++containment_hits_;
      *containment_derived = true;
      return std::make_shared<const ItemSet>(
          ItemSet::Intersect(*entry->items, candidates));
    }
    if (Entry* entry = FindLocked(Key{source, Kind::kSq, cond_key});
        entry != nullptr) {
      // sjq(c, R, X) = sq(c, R) ∩ X by definition.
      TouchLocked(*entry, Key{});
      ++misses_;
      ++containment_hits_;
      *containment_derived = true;
      return std::make_shared<const ItemSet>(
          ItemSet::Intersect(*entry->items, candidates));
    }
    if (Entry* entry = FindLocked(Key{source, Kind::kLq, ""});
        entry != nullptr) {
      relation = entry->relation;
      TouchLocked(*entry, Key{});
    }
  }
  if (relation != nullptr) {
    Result<ItemSet> selected = relation->SelectItems(cond, merge_attribute);
    if (selected.ok()) {
      std::unique_lock<std::mutex> lock(mu_);
      ++misses_;
      ++containment_hits_;
      *containment_derived = true;
      return std::make_shared<const ItemSet>(
          ItemSet::Intersect(*selected, candidates));
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  ++misses_;
  return nullptr;
}

void SourceCallCache::InsertSemiJoin(size_t source, std::string cond_key,
                                     ItemSet candidates, ItemSet result) {
  std::unique_lock<std::mutex> lock(mu_);
  Key key{source, Kind::kSjq, std::move(cond_key)};
  auto it = entries_.find(key);
  if (it != entries_.end()) EraseLocked(it);
  Entry entry;
  entry.items = std::make_shared<const ItemSet>(std::move(result));
  entry.candidates = std::make_shared<const ItemSet>(std::move(candidates));
  entry.bytes = entry.items->ApproxBytes() + entry.candidates->ApproxBytes();
  InsertLocked(std::move(key), std::move(entry));
}

std::shared_ptr<const Relation> SourceCallCache::LookupLoad(size_t source) {
  std::unique_lock<std::mutex> lock(mu_);
  Entry* entry = FindLocked(Key{source, Kind::kLq, ""});
  if (entry == nullptr) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  TouchLocked(*entry, Key{});
  return entry->relation;
}

void SourceCallCache::InsertLoad(size_t source, Relation relation) {
  std::unique_lock<std::mutex> lock(mu_);
  Key key{source, Kind::kLq, ""};
  if (entries_.find(key) != entries_.end()) return;  // first writer wins
  Entry entry;
  entry.relation = std::make_shared<const Relation>(std::move(relation));
  // Cached relations are scanned repeatedly by containment derivation
  // (DeriveSelect): build the columnar mirror up front so (a) those scans
  // take the batch path from the first hit and (b) the byte budget accounts
  // for the mirror's residency, not just the row store.
  entry.relation->WarmColumnar();
  entry.bytes = entry.relation->ApproxBytes();
  InsertLocked(std::move(key), std::move(entry));
}

std::shared_ptr<const ItemSet> SourceCallCache::Lookup(
    size_t source, const std::string& cond_key) {
  std::unique_lock<std::mutex> lock(mu_);
  Entry* entry = FindLocked(Key{source, Kind::kSq, cond_key});
  if (entry == nullptr) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  TouchLocked(*entry, Key{});
  return entry->items;
}

void SourceCallCache::Insert(size_t source, std::string cond_key,
                             ItemSet items) {
  std::unique_lock<std::mutex> lock(mu_);
  Key key{source, Kind::kSq, std::move(cond_key)};
  if (entries_.find(key) != entries_.end()) return;  // first writer wins
  Entry entry;
  entry.items = std::make_shared<const ItemSet>(std::move(items));
  entry.bytes = entry.items->ApproxBytes();
  InsertLocked(std::move(key), std::move(entry));
}

void SourceCallCache::Invalidate(size_t source) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.lower_bound(Key{source, Kind::kSq, ""});
  while (it != entries_.end() && it->first.source == source) {
    auto next = std::next(it);
    EraseLocked(it);
    it = next;
  }
  // Bump the version so flights begun before this point cannot publish.
  VersionLocked(source);
  ++versions_[source];
  ++invalidations_;
  static Counter& invalidations =
      MetricsRegistry::Global().counter(metrics::kCacheInvalidations);
  invalidations.Increment();
  PublishGauges();
}

void SourceCallCache::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  for (uint64_t& version : versions_) ++version;
  hits_ = 0;
  misses_ = 0;
  containment_hits_ = 0;
  evictions_ = 0;
  invalidations_ = 0;
  flights_deduplicated_ = 0;
  PublishGauges();
}

bool SourceCallCache::ContainsSelect(size_t source,
                                     const std::string& cond_key) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(Key{source, Kind::kSq, cond_key});
  return it != entries_.end() && !ExpiredLocked(it->second);
}

bool SourceCallCache::ContainsLoad(size_t source) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(Key{source, Kind::kLq, ""});
  return it != entries_.end() && !ExpiredLocked(it->second);
}

bool SourceCallCache::ContainsSemiJoin(size_t source,
                                       const std::string& cond_key) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(Key{source, Kind::kSjq, cond_key});
  return it != entries_.end() && !ExpiredLocked(it->second);
}

size_t SourceCallCache::hits() const {
  std::unique_lock<std::mutex> lock(mu_);
  return hits_;
}

size_t SourceCallCache::misses() const {
  std::unique_lock<std::mutex> lock(mu_);
  return misses_;
}

size_t SourceCallCache::containment_hits() const {
  std::unique_lock<std::mutex> lock(mu_);
  return containment_hits_;
}

size_t SourceCallCache::evictions() const {
  std::unique_lock<std::mutex> lock(mu_);
  return evictions_;
}

size_t SourceCallCache::invalidations() const {
  std::unique_lock<std::mutex> lock(mu_);
  return invalidations_;
}

size_t SourceCallCache::entries() const {
  std::unique_lock<std::mutex> lock(mu_);
  return entries_.size();
}

size_t SourceCallCache::bytes() const {
  std::unique_lock<std::mutex> lock(mu_);
  return bytes_;
}

size_t SourceCallCache::flights_deduplicated() const {
  std::unique_lock<std::mutex> lock(mu_);
  return flights_deduplicated_;
}

SourceCallCache::Stats SourceCallCache::StatsSnapshot() const {
  std::unique_lock<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.containment_hits = containment_hits_;
  stats.evictions = evictions_;
  stats.invalidations = invalidations_;
  stats.flights_deduplicated = flights_deduplicated_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace fusion
