#include "exec/source_call_cache.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusion {

/// Rendezvous state for one in-flight source call. `settled` flips exactly
/// once — when the leader fulfills or abandons — and waiters re-check the
/// memo under the cache mutex afterwards.
struct SourceCallCache::FlightGuard::Flight {
  std::condition_variable cv;
  bool settled = false;
};

SourceCallCache::FlightGuard::FlightGuard(FlightGuard&& other) noexcept
    : cache_(other.cache_),
      cached_(other.cached_),
      key_(std::move(other.key_)),
      flight_(std::move(other.flight_)) {
  other.cache_ = nullptr;
  other.cached_ = nullptr;
}

SourceCallCache::FlightGuard::~FlightGuard() {
  if (cache_ != nullptr && flight_ != nullptr) {
    // Leader bailed without publishing (the call failed): abandon the flight
    // so a waiter can be promoted and retry the call itself.
    cache_->SettleFlight(key_, flight_, nullptr);
  }
}

void SourceCallCache::FlightGuard::Fulfill(const ItemSet& items) {
  if (cache_ == nullptr || flight_ == nullptr) return;
  cache_->SettleFlight(key_, flight_, &items);
  flight_.reset();
}

const ItemSet* SourceCallCache::LookupLocked(
    const std::pair<size_t, std::string>& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

SourceCallCache::FlightGuard SourceCallCache::BeginFlight(
    size_t source, const std::string& cond_key) {
  std::pair<size_t, std::string> key{source, cond_key};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (const ItemSet* hit = LookupLocked(key); hit != nullptr) {
      ++hits_;
      return FlightGuard(this, hit, std::move(key), nullptr);
    }
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      auto flight = std::make_shared<FlightGuard::Flight>();
      inflight_.emplace(key, flight);
      ++misses_;
      return FlightGuard(this, nullptr, std::move(key), std::move(flight));
    }
    // Someone else is already asking the source this exact question; wait
    // for their answer instead of issuing a duplicate call. (Tracer::Record
    // only takes its own shard mutex, so spanning the wait while holding
    // mu_ cannot deadlock.)
    ++flights_deduplicated_;
    static Counter& waits =
        MetricsRegistry::Global().counter(metrics::kCacheFlightWaits);
    waits.Increment();
    ScopedSpan span(SpanCategory::kCache, "cache.wait");
    if (span.active()) span.AddAttr("cond", key.second);
    std::shared_ptr<FlightGuard::Flight> flight = it->second;
    flight->cv.wait(lock, [&] { return flight->settled; });
    // Loop: on fulfill the memo now hits; on abandon this caller competes
    // for leadership of a fresh flight.
  }
}

void SourceCallCache::SettleFlight(
    const std::pair<size_t, std::string>& key,
    const std::shared_ptr<FlightGuard::Flight>& flight, const ItemSet* items) {
  std::unique_lock<std::mutex> lock(mu_);
  if (items != nullptr) {
    entries_.emplace(key, *items);  // first writer wins
  }
  auto it = inflight_.find(key);
  if (it != inflight_.end() && it->second == flight) {
    inflight_.erase(it);
  }
  flight->settled = true;
  flight->cv.notify_all();
}

const ItemSet* SourceCallCache::Lookup(size_t source,
                                       const std::string& cond_key) {
  std::unique_lock<std::mutex> lock(mu_);
  const ItemSet* hit = LookupLocked({source, cond_key});
  if (hit == nullptr) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return hit;
}

void SourceCallCache::Insert(size_t source, std::string cond_key,
                             ItemSet items) {
  std::unique_lock<std::mutex> lock(mu_);
  entries_.emplace(std::make_pair(source, std::move(cond_key)),
                   std::move(items));
}

void SourceCallCache::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  flights_deduplicated_ = 0;
}

size_t SourceCallCache::hits() const {
  std::unique_lock<std::mutex> lock(mu_);
  return hits_;
}

size_t SourceCallCache::misses() const {
  std::unique_lock<std::mutex> lock(mu_);
  return misses_;
}

size_t SourceCallCache::entries() const {
  std::unique_lock<std::mutex> lock(mu_);
  return entries_.size();
}

size_t SourceCallCache::flights_deduplicated() const {
  std::unique_lock<std::mutex> lock(mu_);
  return flights_deduplicated_;
}

}  // namespace fusion
