#ifndef FUSION_EXEC_EXEC_INTERNAL_H_
#define FUSION_EXEC_EXEC_INTERNAL_H_

#include <string>

#include "common/item_set.h"
#include "common/status.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/condition.h"
#include "source/cost_ledger.h"
#include "source/source_wrapper.h"

/// Source-call machinery shared by the sequential interpreter
/// (exec/executor.cc) and the parallel executor (exec/parallel_executor.cc).
/// Both paths must charge, retry, cache, and emulate identically — that is
/// what makes their ledgers byte-comparable in tests. It is also where the
/// observability layer hooks in: every wrapper call attempt gets a
/// `source_call` span (one per ledger charge) and a source_calls_total
/// metric tick, retries get `retry` spans and retries_total, and per-
/// execution counts accumulate into a CallStats for the ExecutionReport.
namespace fusion {
namespace exec_internal {

/// Per-execution observability counters, surfaced on ExecutionReport. The
/// parallel executor gives each op a private CallStats and merges them
/// after the pool joins (same discipline as the sub-ledgers).
struct CallStats {
  size_t retries = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;

  void MergeFrom(const CallStats& other) {
    retries += other.retries;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
  }
};

/// Who is being called and on whose behalf — context for spans, metrics,
/// and per-execution stats. All fields optional; a default context traces
/// anonymously and counts nothing per-execution.
struct CallContext {
  /// Operation tag: "sq", "sjq", "probe" (emulated-semijoin binding),
  /// "lq", or "fetch". Drives the span name and the metric counter.
  const char* op = "call";
  const std::string* source_name = nullptr;
  /// When set, each attempt's span carries the cost delta this attempt
  /// charged to the ledger.
  const CostLedger* ledger = nullptr;
  CallStats* stats = nullptr;
};

/// Ticks source_calls_total.<op> and, when `cost_delta >= 0`, observes it
/// in the source_call_cost histogram. Counter references are cached behind
/// function-local statics, so the hot path is two relaxed atomic RMWs.
void CountSourceCall(const char* op, double cost_delta);

/// Runs `fn` up to `max_attempts` times, retrying only transient
/// (kInternal) failures. Returns the last result either way. Every attempt
/// is traced as one `source_call` span — so the span count equals the
/// ledger's charge count, failed attempts included — and counted into
/// source_calls_total.<op>; re-attempts additionally get an enclosing
/// `retry` span and tick retries_total.
template <typename Fn>
auto CallWithRetries(Fn fn, int max_attempts, const CallContext& ctx = {})
    -> decltype(fn()) {
  auto one_attempt = [&](int attempt) {
    ScopedSpan span(SpanCategory::kSourceCall, ctx.op);
    const double cost_before =
        ctx.ledger != nullptr ? ctx.ledger->total() : 0.0;
    auto result = fn();
    const double cost_delta =
        ctx.ledger != nullptr ? ctx.ledger->total() - cost_before : -1.0;
    if (span.active()) {
      if (ctx.source_name != nullptr) span.AddAttr("source", *ctx.source_name);
      if (attempt > 0) span.AddAttr("attempt", static_cast<int64_t>(attempt));
      if (ctx.ledger != nullptr) span.AddAttr("cost", cost_delta);
      if (!result.ok()) span.AddAttr("error", result.status().ToString());
    }
    CountSourceCall(ctx.op, cost_delta);
    return result;
  };
  auto result = one_attempt(0);
  for (int attempt = 1; attempt < max_attempts && !result.ok() &&
                        result.status().code() == StatusCode::kInternal;
       ++attempt) {
    static Counter& retries =
        MetricsRegistry::Global().counter(metrics::kRetriesTotal);
    retries.Increment();
    if (ctx.stats != nullptr) ++ctx.stats->retries;
    ScopedSpan retry_span(SpanCategory::kRetry, ctx.op);
    if (retry_span.active() && ctx.source_name != nullptr) {
      retry_span.AddAttr("source", *ctx.source_name);
      retry_span.AddAttr("attempt", static_cast<int64_t>(attempt));
    }
    result = one_attempt(attempt);
  }
  return result;
}

/// Emulates sjq(cond, source, candidates) with one passed-binding selection
/// per candidate. Probe charges are re-tagged so reports distinguish native
/// semijoins from emulated ones.
Result<ItemSet> EmulateSemiJoin(SourceWrapper& source, const Condition& cond,
                                const std::string& merge_attribute,
                                const ItemSet& candidates, int max_attempts,
                                CostLedger& ledger, CallStats* stats);

/// One selection op's source interaction: consults options.cache first
/// (single-flight deduplicated, so concurrent identical selections — within
/// one parallel plan or across racing executions — cost exactly one source
/// call), retries transient failures, and publishes fresh answers back to
/// the cache. Charges go to `ledger`; cache hits charge nothing. Cache
/// hits/misses tick both the global metrics and `stats`.
Result<ItemSet> CachedSelect(SourceWrapper& source, size_t source_index,
                             const Condition& cond,
                             const std::string& merge_attribute,
                             const ExecOptions& options, CostLedger& ledger,
                             CallStats* stats);

/// Simulated-latency hook: sleeps cost * options.simulated_seconds_per_cost
/// (no-op at the default scale 0). Lets benchmarks observe real wall-clock
/// overlap whose per-op durations match the cost model's units.
void SleepForCost(double cost, const ExecOptions& options);

}  // namespace exec_internal
}  // namespace fusion

#endif  // FUSION_EXEC_EXEC_INTERNAL_H_
