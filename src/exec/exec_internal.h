#ifndef FUSION_EXEC_EXEC_INTERNAL_H_
#define FUSION_EXEC_EXEC_INTERNAL_H_

#include <string>

#include "common/item_set.h"
#include "common/status.h"
#include "exec/executor.h"
#include "relational/condition.h"
#include "source/cost_ledger.h"
#include "source/source_wrapper.h"

/// Source-call machinery shared by the sequential interpreter
/// (exec/executor.cc) and the parallel executor (exec/parallel_executor.cc).
/// Both paths must charge, retry, cache, and emulate identically — that is
/// what makes their ledgers byte-comparable in tests.
namespace fusion {
namespace exec_internal {

/// Runs `fn` up to `max_attempts` times, retrying only transient
/// (kInternal) failures. Returns the last result either way.
template <typename Fn>
auto CallWithRetries(Fn fn, int max_attempts) -> decltype(fn()) {
  auto result = fn();
  for (int attempt = 1; attempt < max_attempts && !result.ok() &&
                        result.status().code() == StatusCode::kInternal;
       ++attempt) {
    result = fn();
  }
  return result;
}

/// Emulates sjq(cond, source, candidates) with one passed-binding selection
/// per candidate. Probe charges are re-tagged so reports distinguish native
/// semijoins from emulated ones.
Result<ItemSet> EmulateSemiJoin(SourceWrapper& source, const Condition& cond,
                                const std::string& merge_attribute,
                                const ItemSet& candidates, int max_attempts,
                                CostLedger& ledger);

/// One selection op's source interaction: consults options.cache first
/// (single-flight deduplicated, so concurrent identical selections — within
/// one parallel plan or across racing executions — cost exactly one source
/// call), retries transient failures, and publishes fresh answers back to
/// the cache. Charges go to `ledger`; cache hits charge nothing.
Result<ItemSet> CachedSelect(SourceWrapper& source, size_t source_index,
                             const Condition& cond,
                             const std::string& merge_attribute,
                             const ExecOptions& options, CostLedger& ledger);

/// Simulated-latency hook: sleeps cost * options.simulated_seconds_per_cost
/// (no-op at the default scale 0). Lets benchmarks observe real wall-clock
/// overlap whose per-op durations match the cost model's units.
void SleepForCost(double cost, const ExecOptions& options);

}  // namespace exec_internal
}  // namespace fusion

#endif  // FUSION_EXEC_EXEC_INTERNAL_H_
