#ifndef FUSION_EXEC_EXEC_INTERNAL_H_
#define FUSION_EXEC_EXEC_INTERNAL_H_

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/item_set.h"
#include "common/status.h"
#include "exec/executor.h"
#include "exec/source_health.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/condition.h"
#include "source/cost_ledger.h"
#include "source/source_wrapper.h"

/// Source-call machinery shared by the sequential interpreter
/// (exec/executor.cc) and the parallel executor (exec/parallel_executor.cc).
/// Both paths must charge, retry, back off, breaker-gate, and cache
/// identically — that is what makes their ledgers byte-comparable in tests.
/// It is also where the observability layer hooks in: every wrapper call
/// attempt gets a `source_call` span (one per ledger charge) and a
/// source_calls_total metric tick, retries get `retry` spans (covering the
/// backoff sleep) and retries_total, and per-execution counts accumulate
/// into a CallStats for the ExecutionReport.
namespace fusion {
namespace exec_internal {

/// Per-execution observability counters, surfaced on ExecutionReport. The
/// parallel executor gives each op a private CallStats and merges them
/// after the pool joins (same discipline as the sub-ledgers).
struct CallStats {
  size_t retries = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Answers derived locally from a containing cached entry (sjq answered
  /// from a cached sq or candidate-superset sjq, sq/sjq answered from a
  /// cached relation). Disjoint from cache_hits; such a call also counts a
  /// miss (the exact key missed) but issues no source round trip.
  size_t cache_containment_hits = 0;
  size_t breaker_fast_fails = 0;
  /// Emulated-semijoin probes skipped because the source's merge-column
  /// Bloom filter ruled the binding out (options.bloom_probe_prefilter).
  size_t semijoin_probes_skipped = 0;

  void MergeFrom(const CallStats& other) {
    retries += other.retries;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_containment_hits += other.cache_containment_hits;
    breaker_fast_fails += other.breaker_fast_fails;
    semijoin_probes_skipped += other.semijoin_probes_skipped;
  }
};

/// Per-execution fault budgets, shared by every worker of one ExecutePlan:
/// the wall-clock deadline (fixed at construction) and the metered-cost
/// budget (accumulated with a relaxed atomic — the check is advisory
/// admission control, not accounting; the ledger stays the ground truth).
class FaultState {
 public:
  explicit FaultState(const ExecOptions& options)
      : deadline_seconds_(options.deadline_seconds),
        cost_budget_(options.cost_budget),
        cancel_(options.cancel),
        start_(std::chrono::steady_clock::now()) {}

  /// Seconds until the deadline (negative once passed); +infinity when no
  /// deadline is configured.
  double remaining_seconds() const;

  /// Admission check before a source call or a backoff sleep: non-OK once
  /// the query was cancelled (kCancelled, checked first), the deadline has
  /// passed, or the cost budget is spent (both kDeadlineExceeded, with a
  /// deadline_exceeded_total tick).
  Status Check() const;

  void ChargeCost(double cost);
  double cost_spent() const {
    return cost_spent_.load(std::memory_order_relaxed);
  }

 private:
  const double deadline_seconds_;
  const double cost_budget_;
  const std::atomic<bool>* const cancel_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<double> cost_spent_{0.0};
};

/// Who is being called and on whose behalf — context for spans, metrics,
/// per-execution stats, and the fault-tolerance gates. All fields optional;
/// a default context traces anonymously, counts nothing per-execution,
/// retries once (no backoff), and applies no deadline or breaker.
struct CallContext {
  /// Operation tag: "sq", "sjq", "probe" (emulated-semijoin binding),
  /// "lq", or "fetch". Drives the span name and the metric counter.
  const char* op = "call";
  const std::string* source_name = nullptr;
  /// When set, each attempt's span carries the cost delta this attempt
  /// charged to the ledger, and the delta feeds the FaultState cost budget.
  const CostLedger* ledger = nullptr;
  CallStats* stats = nullptr;
  /// Retry/backoff/timeout policy; null = single attempt.
  const RetryPolicy* retry = nullptr;
  /// Per-query deadline / cost budget; null = unbounded.
  FaultState* fault = nullptr;
  /// Shared circuit breakers; requires source_index >= 0. Null = no gate.
  SourceHealth* health = nullptr;
  int source_index = -1;
  /// When set, backoff sleeps are bracketed with BeginBlocking/EndBlocking
  /// so a sleeping retry does not hold one of the parallel executor's
  /// worker slots (ready ops keep draining at full parallelism).
  ThreadPool* blocking_pool = nullptr;
};

/// Ticks source_calls_total.<op> and, when `cost_delta >= 0`, observes it
/// in the source_call_cost histogram. Counter references are cached behind
/// function-local statics, so the hot path is two relaxed atomic RMWs.
void CountSourceCall(const char* op, double cost_delta);

/// Pre-call admission: the per-query deadline/cost budget, then the
/// circuit breaker. A non-OK return means the call must not be issued —
/// nothing was charged and no round-trip happened. Ticks the corresponding
/// fast-fail metrics and `stats`.
Status AdmitCall(const CallContext& ctx);

/// Sleeps the policy backoff before re-attempt `attempt`, truncated by the
/// remaining deadline, inside the given (already open) retry span. Returns
/// non-OK without sleeping when the deadline leaves no room to retry.
Status BackoffBeforeAttempt(const CallContext& ctx, const RetryPolicy& retry,
                            int attempt, ScopedSpan& retry_span);

/// Builds the per-call-timeout status (kDeadlineExceeded) for ctx's call.
Status CallTimeoutStatus(const CallContext& ctx, double call_seconds,
                         double timeout_seconds);

/// Runs `fn` under the context's full fault policy:
///  - admission (deadline / cost budget / circuit breaker) before every
///    attempt; inadmissible calls fail fast without charging a round-trip;
///  - per-call timeout: an attempt that outlives
///    retry.call_timeout_seconds is treated as a (retriable) timeout
///    failure;
///  - transient failures (kInternal, call timeouts) are retried up to
///    retry.max_attempts times with exponential backoff and deterministic
///    seeded jitter; permanent failures (kUnavailable, kUnsupported) and
///    the query deadline are not retried;
///  - every attempt's outcome is reported to the breaker.
/// Every attempt is traced as one `source_call` span — so the span count
/// equals the ledger's charge count, failed attempts included — and counted
/// into source_calls_total.<op>; re-attempts get an enclosing `retry` span
/// that also covers the backoff sleep, and tick retries_total.
template <typename Fn>
auto CallWithRetries(Fn fn, const CallContext& ctx = {}) -> decltype(fn()) {
  static const RetryPolicy kNoRetry;
  const RetryPolicy& retry = ctx.retry != nullptr ? *ctx.retry : kNoRetry;
  // Set when the last failure was a per-call timeout conversion — the one
  // kDeadlineExceeded flavor that is retriable (the next attempt may be
  // fast); a query-deadline kDeadlineExceeded never re-enters the loop.
  bool last_was_call_timeout = false;
  auto one_attempt = [&](int attempt) {
    last_was_call_timeout = false;
    ScopedSpan span(SpanCategory::kSourceCall, ctx.op);
    const double cost_before =
        ctx.ledger != nullptr ? ctx.ledger->total() : 0.0;
    const auto started = std::chrono::steady_clock::now();
    auto result = fn();
    const double call_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    const double cost_delta =
        ctx.ledger != nullptr ? ctx.ledger->total() - cost_before : -1.0;
    if (ctx.fault != nullptr && cost_delta > 0.0) {
      ctx.fault->ChargeCost(cost_delta);
    }
    if (result.ok() && retry.call_timeout_seconds > 0.0 &&
        call_seconds > retry.call_timeout_seconds) {
      last_was_call_timeout = true;
      result = CallTimeoutStatus(ctx, call_seconds,
                                 retry.call_timeout_seconds);
    }
    if (span.active()) {
      if (ctx.source_name != nullptr) span.AddAttr("source", *ctx.source_name);
      if (attempt > 0) span.AddAttr("attempt", static_cast<int64_t>(attempt));
      if (ctx.ledger != nullptr) span.AddAttr("cost", cost_delta);
      if (!result.ok()) span.AddAttr("error", result.status().ToString());
    }
    CountSourceCall(ctx.op, cost_delta);
    if (ctx.health != nullptr && ctx.source_index >= 0) {
      if (result.ok()) {
        ctx.health->RecordSuccess(static_cast<size_t>(ctx.source_index),
                                  ctx.source_name);
      } else {
        ctx.health->RecordFailure(static_cast<size_t>(ctx.source_index),
                                  ctx.source_name);
      }
    }
    return result;
  };
  {
    const Status admitted = AdmitCall(ctx);
    if (!admitted.ok()) return admitted;
  }
  auto result = one_attempt(0);
  auto retriable = [&] {
    if (result.ok()) return false;
    const StatusCode code = result.status().code();
    return code == StatusCode::kInternal ||
           (code == StatusCode::kDeadlineExceeded && last_was_call_timeout);
  };
  for (int attempt = 1; attempt < retry.max_attempts && retriable();
       ++attempt) {
    static Counter& retries =
        MetricsRegistry::Global().counter(metrics::kRetriesTotal);
    retries.Increment();
    if (ctx.stats != nullptr) ++ctx.stats->retries;
    ScopedSpan retry_span(SpanCategory::kRetry, ctx.op);
    if (retry_span.active() && ctx.source_name != nullptr) {
      retry_span.AddAttr("source", *ctx.source_name);
      retry_span.AddAttr("attempt", static_cast<int64_t>(attempt));
    }
    const Status slept = BackoffBeforeAttempt(ctx, retry, attempt, retry_span);
    if (!slept.ok()) return slept;
    const Status admitted = AdmitCall(ctx);
    if (!admitted.ok()) return admitted;
    result = one_attempt(attempt);
  }
  return result;
}

/// Emulates sjq(cond, source, candidates) with one passed-binding selection
/// per candidate. Probes route through the cache path (CachedSelect, keyed
/// on the canonical probe condition), so identical probes across plans and
/// queries re-answer from the memo instead of re-contacting the source.
/// Probe charges are re-tagged so reports distinguish native semijoins from
/// emulated ones. `ctx.op`/`ledger` are overridden per probe; the
/// fault-tolerance fields gate every probe individually.
Result<ItemSet> EmulateSemiJoin(SourceWrapper& source, const Condition& cond,
                                const std::string& merge_attribute,
                                const ItemSet& candidates,
                                const ExecOptions& options, CallContext ctx,
                                CostLedger& ledger);

/// One selection op's source interaction: consults options.cache first
/// (single-flight deduplicated, so concurrent identical selections — within
/// one parallel plan or across racing executions — cost exactly one source
/// call), falls back to containment derivation from a cached lq(R), retries
/// transient failures, and publishes fresh answers back to the cache.
/// Charges go to `ledger`; cache hits and derived answers charge nothing.
/// Hits/misses/containment tick both the global metrics and `ctx.stats`.
/// `op_tag` labels spans/metrics ("sq", or "probe" for emulated-semijoin
/// bindings).
Result<ItemSet> CachedSelect(SourceWrapper& source, const Condition& cond,
                             const std::string& merge_attribute,
                             const ExecOptions& options, CostLedger& ledger,
                             CallContext ctx, const char* op_tag = "sq");

/// One semijoin op's source interaction, shared by both executors: answers
/// from the cache when possible (exact sjq entry, candidate-superset sjq,
/// cached sq, or cached relation — all free), otherwise dispatches on the
/// source's semijoin capability (native call, per-binding emulation, or
/// kUnsupported) and memoizes the fresh answer. `*emulated` is set when the
/// per-binding path ran (the caller counts emulated semijoins).
Result<ItemSet> CachedSemiJoin(SourceWrapper& source, const Condition& cond,
                               const std::string& merge_attribute,
                               const ItemSet& candidates,
                               const ExecOptions& options, CostLedger& ledger,
                               CallContext ctx, bool* emulated);

/// One load op's source interaction: returns the cached relation when
/// present (free), otherwise performs lq(R) with the full fault policy and
/// memoizes the result.
Result<Relation> CachedLoad(SourceWrapper& source, const ExecOptions& options,
                            CostLedger& ledger, CallContext ctx);

/// Simulated-latency hook: sleeps cost * options.simulated_seconds_per_cost
/// (no-op at the default scale 0). Lets benchmarks observe real wall-clock
/// overlap whose per-op durations match the cost model's units.
void SleepForCost(double cost, const ExecOptions& options);

/// Degradability of each plan op under SourceFailurePolicy::kDegrade:
/// true iff the op is a source call (sq/sjq/lq) whose target variable is
/// only ever used at *monotone* plan positions — every path to the plan
/// result passes through union/intersect inputs, semijoin candidate sets,
/// local selections, or the *left* side of a difference. Substituting ∅
/// there can only shrink the answer (sound). A leaf feeding the right side
/// of a difference is not degradable: shrinking a subtrahend could add
/// items to the answer.
std::vector<char> DegradableOps(const Plan& plan);

/// Assembles report.completeness (and report.breaker_fast_fails via stats
/// callers merge separately) from the per-op degradation outcomes:
/// `reasons[k]` non-empty iff op k was substituted with ∅, holding the
/// final status string. Load exclusions fan out to the conditions of their
/// dependent local selections.
void BuildCompletenessReport(const Plan& plan,
                             const std::vector<std::string>& reasons,
                             CompletenessReport* out);

/// True when `status` is the kind of source-unreachable failure degraded
/// mode may absorb: exhausted transient retries (kInternal), a permanently
/// unavailable source / open breaker (kUnavailable), or an exceeded
/// deadline, call timeout, or cost budget (kDeadlineExceeded). Plan or
/// capability errors (kUnsupported, kInvalidArgument, ...) always fail.
bool IsDegradableFailure(const Status& status);

}  // namespace exec_internal
}  // namespace fusion

#endif  // FUSION_EXEC_EXEC_INTERNAL_H_
