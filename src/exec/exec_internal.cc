#include "exec/exec_internal.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>

#include "plan/plan.h"

namespace fusion {
namespace exec_internal {

double FaultState::remaining_seconds() const {
  if (deadline_seconds_ <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  return deadline_seconds_ - elapsed;
}

Status FaultState::Check() const {
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    static Counter& cancelled =
        MetricsRegistry::Global().counter(metrics::kCancelledTotal);
    cancelled.Increment();
    return Status::Cancelled("query cancelled by client");
  }
  if (remaining_seconds() < 0.0) {
    static Counter& exceeded = MetricsRegistry::Global().counter(
        metrics::kDeadlineExceededTotal);
    exceeded.Increment();
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  if (cost_budget_ > 0.0 && cost_spent() >= cost_budget_) {
    static Counter& exceeded = MetricsRegistry::Global().counter(
        metrics::kDeadlineExceededTotal);
    exceeded.Increment();
    return Status::DeadlineExceeded("query cost budget exhausted");
  }
  return Status::Ok();
}

void FaultState::ChargeCost(double cost) {
  // fetch_add for atomic<double> is C++20; a CAS loop keeps us portable.
  double current = cost_spent_.load(std::memory_order_relaxed);
  while (!cost_spent_.compare_exchange_weak(current, current + cost,
                                            std::memory_order_relaxed)) {
  }
}

void CountSourceCall(const char* op, double cost_delta) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter& sq = registry.counter(metrics::kSourceCallsSq);
  static Counter& sjq = registry.counter(metrics::kSourceCallsSjq);
  static Counter& probe = registry.counter(metrics::kSourceCallsProbe);
  static Counter& lq = registry.counter(metrics::kSourceCallsLq);
  static Counter& fetch = registry.counter(metrics::kSourceCallsFetch);
  Counter* c = &sq;
  if (std::strcmp(op, "sjq") == 0) {
    c = &sjq;
  } else if (std::strcmp(op, "probe") == 0) {
    c = &probe;
  } else if (std::strcmp(op, "lq") == 0) {
    c = &lq;
  } else if (std::strcmp(op, "fetch") == 0) {
    c = &fetch;
  }
  c->Increment();
  if (cost_delta >= 0.0) {
    static Histogram& cost_hist =
        registry.histogram(metrics::kSourceCallCost);
    cost_hist.Observe(cost_delta);
  }
}

Status AdmitCall(const CallContext& ctx) {
  if (ctx.fault != nullptr) {
    FUSION_RETURN_IF_ERROR(ctx.fault->Check());
  }
  if (ctx.health != nullptr && ctx.source_index >= 0) {
    const SourceHealth::Admission admission = ctx.health->Admit(
        static_cast<size_t>(ctx.source_index), ctx.source_name);
    if (!admission.allowed) {
      if (ctx.stats != nullptr) ++ctx.stats->breaker_fast_fails;
      std::string who = ctx.source_name != nullptr
                            ? "'" + *ctx.source_name + "'"
                            : "#" + std::to_string(ctx.source_index);
      return Status::Unavailable("circuit breaker open for source " + who);
    }
  }
  return Status::Ok();
}

Status BackoffBeforeAttempt(const CallContext& ctx, const RetryPolicy& retry,
                            int attempt, ScopedSpan& retry_span) {
  const size_t source = ctx.source_index >= 0
                            ? static_cast<size_t>(ctx.source_index)
                            : 0;
  double backoff = retry.BackoffSeconds(source, attempt);
  if (backoff <= 0.0) return Status::Ok();
  if (ctx.fault != nullptr) {
    // No point sleeping past the query deadline: truncate the sleep to the
    // remaining budget, and give up on the retry outright when there is
    // (almost) nothing left.
    const double remaining = ctx.fault->remaining_seconds();
    if (remaining <= 0.0) return ctx.fault->Check();
    if (backoff > remaining) backoff = remaining;
  }
  if (retry_span.active()) retry_span.AddAttr("backoff_s", backoff);
  static Counter& sleeps =
      MetricsRegistry::Global().counter(metrics::kBackoffSleepsTotal);
  sleeps.Increment();
  if (ctx.blocking_pool != nullptr) ctx.blocking_pool->BeginBlocking();
  std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  if (ctx.blocking_pool != nullptr) ctx.blocking_pool->EndBlocking();
  return Status::Ok();
}

Status CallTimeoutStatus(const CallContext& ctx, double call_seconds,
                         double timeout_seconds) {
  std::string who =
      ctx.source_name != nullptr ? " to '" + *ctx.source_name + "'" : "";
  return Status::DeadlineExceeded(
      "call" + who + " exceeded per-call timeout (" +
      std::to_string(call_seconds) + "s > " +
      std::to_string(timeout_seconds) + "s)");
}

namespace {

/// Ticks the exact-hit or containment-hit counters (global metrics and
/// per-execution stats) and emits the cache span for one answered call.
void CountCacheAnswer(const CallContext& ctx, bool derived,
                      const SourceWrapper& source, const std::string& key) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (derived) {
    static Counter& containment =
        registry.counter(metrics::kCacheContainmentHits);
    containment.Increment();
    if (ctx.stats != nullptr) ++ctx.stats->cache_containment_hits;
  } else {
    static Counter& hits = registry.counter(metrics::kCacheHits);
    hits.Increment();
    if (ctx.stats != nullptr) ++ctx.stats->cache_hits;
  }
  ScopedSpan span(SpanCategory::kCache,
                  derived ? "cache.derived" : "cache.hit");
  if (span.active()) {
    span.AddAttr("source", source.name());
    span.AddAttr("cond", key);
  }
}

void CountCacheMiss(const CallContext& ctx) {
  static Counter& misses =
      MetricsRegistry::Global().counter(metrics::kCacheMisses);
  misses.Increment();
  if (ctx.stats != nullptr) ++ctx.stats->cache_misses;
}

}  // namespace

Result<ItemSet> EmulateSemiJoin(SourceWrapper& source, const Condition& cond,
                                const std::string& merge_attribute,
                                const ItemSet& candidates,
                                const ExecOptions& options, CallContext ctx,
                                CostLedger& ledger) {
  ItemSet result;
  // Nothing to probe: return before acquiring any probe machinery (Bloom
  // filter, probe conditions). sjq(c, R, ∅) = ∅ with zero source contact.
  if (candidates.empty()) return result;
  // Optional Bloom pre-filter: the source's merge-column filter has no
  // false negatives, so a rejected binding cannot appear in any tuple and
  // its probe is guaranteed to return ∅ — skipping it never changes the
  // answer. It does change the metered ledger (skipped probes charge
  // nothing), which is why the option defaults off: cost-fidelity tests pin
  // the per-binding probe accounting.
  std::shared_ptr<const BloomFilter> bloom;
  if (options.bloom_probe_prefilter) {
    bloom = source.MergeBloom(merge_attribute);
  }
  for (const Value& item : candidates) {
    if (bloom != nullptr && !bloom->MayContain(item)) {
      static Counter& skipped = MetricsRegistry::Global().counter(
          metrics::kSemijoinProbesSkipped);
      skipped.Increment();
      if (ctx.stats != nullptr) ++ctx.stats->semijoin_probes_skipped;
      continue;
    }
    const Condition probe =
        Condition::And(cond, Condition::Eq(merge_attribute, item));
    CostLedger local;
    // Probes go through the cache path keyed on the canonical probe
    // condition, so identical probes across plans and queries answer from
    // the memo (and concurrent identical probes single-flight).
    FUSION_ASSIGN_OR_RETURN(
        ItemSet part, CachedSelect(source, probe, merge_attribute, options,
                                   local, ctx, "probe"));
    for (Charge charge : local.charges()) {
      charge.kind = ChargeKind::kEmulatedSemiJoinProbe;
      ledger.Add(std::move(charge));
    }
    // Candidates are probed in sorted order and each probe returns at most
    // {item}, so this appends in O(1) amortized — O(k) across all probes
    // where the old `result = Union(result, part)` rebuild was O(k²).
    result.UnionInPlace(part);
  }
  return result;
}

Result<ItemSet> CachedSelect(SourceWrapper& source, const Condition& cond,
                             const std::string& merge_attribute,
                             const ExecOptions& options, CostLedger& ledger,
                             CallContext ctx, const char* op_tag) {
  ctx.op = op_tag;
  ctx.source_name = &source.name();
  ctx.ledger = &ledger;
  auto call = [&] {
    return CallWithRetries(
        [&] { return source.Select(cond, merge_attribute, &ledger); }, ctx);
  };
  if (options.cache == nullptr || ctx.source_index < 0) return call();
  const std::string key = cond.CacheKey();
  SourceCallCache::FlightGuard flight = options.cache->BeginFlight(
      static_cast<size_t>(ctx.source_index), key);
  if (flight.cached() != nullptr) {
    CountCacheAnswer(ctx, /*derived=*/false, source, key);
    return *flight.cached();  // free: answered from the memo
  }
  // This caller leads the flight. Before contacting the source, try
  // containment: with lq(R) cached, sq(c, R) is a free local evaluation.
  // Fulfilling publishes the derived answer as an exact entry, so waiters
  // and future lookups hit directly.
  if (std::shared_ptr<const ItemSet> derived = options.cache->DeriveSelect(
          static_cast<size_t>(ctx.source_index), cond, merge_attribute)) {
    CountCacheAnswer(ctx, /*derived=*/true, source, key);
    flight.Fulfill(*derived);
    return *derived;
  }
  CountCacheMiss(ctx);
  // A failure abandons the flight (guard destructor) so concurrent waiters
  // retry rather than inheriting the error.
  FUSION_ASSIGN_OR_RETURN(ItemSet result, call());
  flight.Fulfill(result);
  return result;
}

Result<ItemSet> CachedSemiJoin(SourceWrapper& source, const Condition& cond,
                               const std::string& merge_attribute,
                               const ItemSet& candidates,
                               const ExecOptions& options, CostLedger& ledger,
                               CallContext ctx, bool* emulated) {
  *emulated = false;
  ctx.source_name = &source.name();
  ctx.ledger = &ledger;
  SourceCallCache* cache = ctx.source_index >= 0 ? options.cache : nullptr;
  std::string key;
  if (cache != nullptr) {
    key = cond.CacheKey();
    bool derived = false;
    if (std::shared_ptr<const ItemSet> answer = cache->FindSemiJoin(
            static_cast<size_t>(ctx.source_index), cond, key, merge_attribute,
            candidates, &derived)) {
      CountCacheAnswer(ctx, derived, source, key);
      return *answer;  // free: exact or containment-derived, no round trip
    }
    CountCacheMiss(ctx);
  }
  Result<ItemSet> result = [&]() -> Result<ItemSet> {
    switch (source.capabilities().semijoin) {
      case SemijoinSupport::kNative:
        ctx.op = "sjq";
        return CallWithRetries(
            [&] {
              return source.SemiJoin(cond, merge_attribute, candidates,
                                     &ledger);
            },
            ctx);
      case SemijoinSupport::kPassedBindingsOnly:
        *emulated = true;
        return EmulateSemiJoin(source, cond, merge_attribute, candidates,
                               options, ctx, ledger);
      case SemijoinSupport::kUnsupported:
        return Status::Unsupported(
            "plan issues a semijoin to source '" + source.name() +
            "', which cannot process semijoins even by emulation");
    }
    return Status::Internal("unknown semijoin capability");
  }();
  if (result.ok() && cache != nullptr) {
    cache->InsertSemiJoin(static_cast<size_t>(ctx.source_index),
                          std::move(key), candidates, *result);
  }
  return result;
}

Result<Relation> CachedLoad(SourceWrapper& source, const ExecOptions& options,
                            CostLedger& ledger, CallContext ctx) {
  ctx.op = "lq";
  ctx.source_name = &source.name();
  ctx.ledger = &ledger;
  SourceCallCache* cache = ctx.source_index >= 0 ? options.cache : nullptr;
  if (cache != nullptr) {
    if (std::shared_ptr<const Relation> relation =
            cache->LookupLoad(static_cast<size_t>(ctx.source_index))) {
      CountCacheAnswer(ctx, /*derived=*/false, source, "lq");
      return *relation;  // local copy: free per the cost model
    }
    CountCacheMiss(ctx);
  }
  Result<Relation> loaded =
      CallWithRetries([&] { return source.Load(&ledger); }, ctx);
  if (loaded.ok() && cache != nullptr) {
    cache->InsertLoad(static_cast<size_t>(ctx.source_index), *loaded);
  }
  return loaded;
}

void SleepForCost(double cost, const ExecOptions& options) {
  if (options.simulated_seconds_per_cost <= 0.0 || cost <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(
      cost * options.simulated_seconds_per_cost));
}

namespace {
// Polarity bits for the monotonicity walk.
constexpr char kPos = 1;  // appears at a monotone (shrink-is-sound) position
constexpr char kNeg = 2;  // appears under an odd number of difference-rhs
}  // namespace

std::vector<char> DegradableOps(const Plan& plan) {
  const std::vector<PlanOp>& ops = plan.ops();
  // var -> polarity bits, seeded at the result variable. Plans are SSA and
  // straight-line (defs precede uses), so one reverse pass sees every use of
  // a variable before its defining op.
  std::vector<char> var_polarity(plan.vars().size(), 0);
  if (plan.result() >= 0) {
    var_polarity[static_cast<size_t>(plan.result())] = kPos;
  }
  auto add = [&](int var, char bits) {
    if (var >= 0) var_polarity[static_cast<size_t>(var)] |= bits;
  };
  for (size_t k = ops.size(); k-- > 0;) {
    const PlanOp& op = ops[k];
    const char p = op.target >= 0
                       ? var_polarity[static_cast<size_t>(op.target)]
                       : 0;
    if (p == 0) continue;  // dead op: never feeds the result
    const char flipped = static_cast<char>(((p & kPos) ? kNeg : 0) |
                                           ((p & kNeg) ? kPos : 0));
    switch (op.kind) {
      case PlanOpKind::kUnion:
      case PlanOpKind::kIntersect:
        // Both ∪ and ∩ are monotone in every input.
        for (int in : op.inputs) add(in, p);
        break;
      case PlanOpKind::kDifference:
        // Y − Z is monotone in Y, *anti*-monotone in Z: shrinking Z grows
        // the result, so Z's subtree flips polarity.
        add(op.inputs[0], p);
        add(op.inputs[1], flipped);
        break;
      case PlanOpKind::kSemiJoin:
        // sjq(c, R, Y) ⊆ Y and is monotone in the candidate set Y.
        add(op.input, p);
        break;
      case PlanOpKind::kLocalSelect:
        // σ_c(Y) ⊆ Y, monotone in the loaded relation.
        add(op.input, p);
        break;
      case PlanOpKind::kSelect:
      case PlanOpKind::kLoad:
        break;  // leaves: nothing upstream
    }
  }
  // A source op is ∅-substitutable iff its value never reaches the result
  // through an anti-monotone position. (A dead op is trivially safe.)
  std::vector<char> degradable(ops.size(), 0);
  for (size_t k = 0; k < ops.size(); ++k) {
    const PlanOp& op = ops[k];
    const bool is_source_call = op.kind == PlanOpKind::kSelect ||
                                op.kind == PlanOpKind::kSemiJoin ||
                                op.kind == PlanOpKind::kLoad;
    if (!is_source_call) continue;
    const char p = op.target >= 0
                       ? var_polarity[static_cast<size_t>(op.target)]
                       : 0;
    degradable[k] = (p & kNeg) == 0 ? 1 : 0;
  }
  return degradable;
}

void BuildCompletenessReport(const Plan& plan,
                             const std::vector<std::string>& reasons,
                             CompletenessReport* out) {
  const std::vector<PlanOp>& ops = plan.ops();
  for (size_t k = 0; k < ops.size() && k < reasons.size(); ++k) {
    if (reasons[k].empty()) continue;
    const PlanOp& op = ops[k];
    out->degraded_ops.push_back(static_cast<int>(k));
    if (op.kind == PlanOpKind::kLoad) {
      // A degraded load excludes its source from every condition evaluated
      // against the loaded relation downstream.
      bool found_dependent = false;
      for (size_t j = k + 1; j < ops.size(); ++j) {
        if (ops[j].kind == PlanOpKind::kLocalSelect &&
            ops[j].input == op.target) {
          out->excluded.push_back({ops[j].cond, op.source, reasons[k]});
          found_dependent = true;
        }
      }
      if (!found_dependent) {
        out->excluded.push_back({-1, op.source, reasons[k]});
      }
    } else {
      out->excluded.push_back({op.cond, op.source, reasons[k]});
    }
  }
  out->answer_complete = out->degraded_ops.empty();
  out->sound = true;  // by construction: non-degradable ops fail the query
}

bool IsDegradableFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInternal:          // transient retries exhausted
    case StatusCode::kUnavailable:       // source down / breaker open
    case StatusCode::kDeadlineExceeded:  // call timeout / deadline / budget
      return true;
    default:
      return false;
  }
}

}  // namespace exec_internal
}  // namespace fusion
