#include "exec/exec_internal.h"

#include <chrono>
#include <thread>
#include <utility>

namespace fusion {
namespace exec_internal {

Result<ItemSet> EmulateSemiJoin(SourceWrapper& source, const Condition& cond,
                                const std::string& merge_attribute,
                                const ItemSet& candidates, int max_attempts,
                                CostLedger& ledger) {
  ItemSet result;
  for (const Value& item : candidates) {
    const Condition probe =
        Condition::And(cond, Condition::Eq(merge_attribute, item));
    CostLedger local;
    FUSION_ASSIGN_OR_RETURN(
        ItemSet part,
        CallWithRetries(
            [&] { return source.Select(probe, merge_attribute, &local); },
            max_attempts));
    for (Charge charge : local.charges()) {
      charge.kind = ChargeKind::kEmulatedSemiJoinProbe;
      ledger.Add(std::move(charge));
    }
    result = ItemSet::Union(result, part);
  }
  return result;
}

Result<ItemSet> CachedSelect(SourceWrapper& source, size_t source_index,
                             const Condition& cond,
                             const std::string& merge_attribute,
                             const ExecOptions& options, CostLedger& ledger) {
  auto call = [&] {
    return CallWithRetries(
        [&] { return source.Select(cond, merge_attribute, &ledger); },
        options.max_attempts);
  };
  if (options.cache == nullptr) return call();
  SourceCallCache::FlightGuard flight =
      options.cache->BeginFlight(source_index, cond.ToString());
  if (flight.cached() != nullptr) {
    return *flight.cached();  // free: answered from the memo
  }
  // This caller leads the flight; a failure abandons it (guard destructor)
  // so concurrent waiters retry rather than inheriting the error.
  FUSION_ASSIGN_OR_RETURN(ItemSet result, call());
  flight.Fulfill(result);
  return result;
}

void SleepForCost(double cost, const ExecOptions& options) {
  if (options.simulated_seconds_per_cost <= 0.0 || cost <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(
      cost * options.simulated_seconds_per_cost));
}

}  // namespace exec_internal
}  // namespace fusion
