#include "exec/exec_internal.h"

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace fusion {
namespace exec_internal {

void CountSourceCall(const char* op, double cost_delta) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter& sq = registry.counter(metrics::kSourceCallsSq);
  static Counter& sjq = registry.counter(metrics::kSourceCallsSjq);
  static Counter& probe = registry.counter(metrics::kSourceCallsProbe);
  static Counter& lq = registry.counter(metrics::kSourceCallsLq);
  static Counter& fetch = registry.counter(metrics::kSourceCallsFetch);
  Counter* c = &sq;
  if (std::strcmp(op, "sjq") == 0) {
    c = &sjq;
  } else if (std::strcmp(op, "probe") == 0) {
    c = &probe;
  } else if (std::strcmp(op, "lq") == 0) {
    c = &lq;
  } else if (std::strcmp(op, "fetch") == 0) {
    c = &fetch;
  }
  c->Increment();
  if (cost_delta >= 0.0) {
    static Histogram& cost_hist =
        registry.histogram(metrics::kSourceCallCost);
    cost_hist.Observe(cost_delta);
  }
}

Result<ItemSet> EmulateSemiJoin(SourceWrapper& source, const Condition& cond,
                                const std::string& merge_attribute,
                                const ItemSet& candidates, int max_attempts,
                                CostLedger& ledger, CallStats* stats) {
  ItemSet result;
  for (const Value& item : candidates) {
    const Condition probe =
        Condition::And(cond, Condition::Eq(merge_attribute, item));
    CostLedger local;
    CallContext ctx;
    ctx.op = "probe";
    ctx.source_name = &source.name();
    ctx.ledger = &local;
    ctx.stats = stats;
    FUSION_ASSIGN_OR_RETURN(
        ItemSet part,
        CallWithRetries(
            [&] { return source.Select(probe, merge_attribute, &local); },
            max_attempts, ctx));
    for (Charge charge : local.charges()) {
      charge.kind = ChargeKind::kEmulatedSemiJoinProbe;
      ledger.Add(std::move(charge));
    }
    result = ItemSet::Union(result, part);
  }
  return result;
}

Result<ItemSet> CachedSelect(SourceWrapper& source, size_t source_index,
                             const Condition& cond,
                             const std::string& merge_attribute,
                             const ExecOptions& options, CostLedger& ledger,
                             CallStats* stats) {
  CallContext ctx;
  ctx.op = "sq";
  ctx.source_name = &source.name();
  ctx.ledger = &ledger;
  ctx.stats = stats;
  auto call = [&] {
    return CallWithRetries(
        [&] { return source.Select(cond, merge_attribute, &ledger); },
        options.max_attempts, ctx);
  };
  if (options.cache == nullptr) return call();
  SourceCallCache::FlightGuard flight =
      options.cache->BeginFlight(source_index, cond.ToString());
  if (flight.cached() != nullptr) {
    static Counter& hits =
        MetricsRegistry::Global().counter(metrics::kCacheHits);
    hits.Increment();
    if (stats != nullptr) ++stats->cache_hits;
    ScopedSpan span(SpanCategory::kCache, "cache.hit");
    if (span.active()) {
      span.AddAttr("source", source.name());
      span.AddAttr("cond", cond.ToString());
    }
    return *flight.cached();  // free: answered from the memo
  }
  static Counter& misses =
      MetricsRegistry::Global().counter(metrics::kCacheMisses);
  misses.Increment();
  if (stats != nullptr) ++stats->cache_misses;
  // This caller leads the flight; a failure abandons it (guard destructor)
  // so concurrent waiters retry rather than inheriting the error.
  FUSION_ASSIGN_OR_RETURN(ItemSet result, call());
  flight.Fulfill(result);
  return result;
}

void SleepForCost(double cost, const ExecOptions& options) {
  if (options.simulated_seconds_per_cost <= 0.0 || cost <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(
      cost * options.simulated_seconds_per_cost));
}

}  // namespace exec_internal
}  // namespace fusion
