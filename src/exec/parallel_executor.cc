#include "exec/parallel_executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "exec/exec_internal.h"
#include "exec/source_health.h"
#include "exec/thread_pool.h"

namespace fusion {
namespace {

using exec_internal::CallContext;
using exec_internal::CallStats;

/// One plan execution scheduled over a worker pool.
///
/// Concurrency design: each op evaluates into op-private state (its own
/// sub-ledger, observation set, stats, degradation slot, and SSA target
/// variable), so workers never write shared locations. The scheduler mutex
/// orders an op's completion before the dispatch of its dependents, which
/// makes the dependents' reads of the op's outputs race-free. All op-private
/// state is merged into the report single-threaded, in plan-op order, after
/// the pool has joined — reproducing the sequential interpreter's ledger
/// charge-for-charge.
class ParallelPlanRun {
 public:
  ParallelPlanRun(const Plan& plan, const SourceCatalog& catalog,
                  const FusionQuery& query, const ExecOptions& options,
                  exec_internal::FaultState* fault, ExecutionReport& report)
      : plan_(plan),
        catalog_(catalog),
        query_(query),
        options_(options),
        fault_(fault),
        report_(report) {
    const size_t num_ops = plan.num_ops();
    const size_t num_vars = plan.vars().size();
    items_.resize(num_vars);
    relations_.resize(num_vars);
    op_ledgers_.resize(num_ops);
    op_stats_.resize(num_ops);
    op_seconds_.assign(num_ops, 0.0);
    op_observed_.assign(num_ops, ItemSet());
    op_emulated_.assign(num_ops, 0);
    op_reasons_.assign(num_ops, "");
    if (options.on_source_failure == SourceFailurePolicy::kDegrade) {
      degradable_ = exec_internal::DegradableOps(plan);
    }
    dependents_.assign(num_ops, {});
    pending_.assign(num_ops, 0);
    BuildDependencies();
  }

  Status Run() {
    const size_t num_ops = plan_.num_ops();
    {
      // Everything ready at the outset (selects and loads with no inputs)
      // is dispatched immediately; the rest unlocks as dependencies finish.
      ThreadPool pool(options_.parallelism);
      std::unique_lock<std::mutex> lock(mu_);
      pool_ = &pool;
      for (size_t k = 0; k < num_ops; ++k) {
        if (pending_[k] == 0) Dispatch(k);
      }
      done_cv_.wait(lock, [&] {
        return finished_ == scheduled_ && (failed_ || finished_ == num_ops);
      });
      pool_ = nullptr;
    }  // pool joins here: every dispatched task has completed
    if (failed_) return error_;

    // Single-threaded merge in plan-op order: the resulting ledger is
    // charge-for-charge (and therefore total-for-total, in floating point)
    // identical to eager sequential execution.
    report_.per_source_items.assign(catalog_.size(), ItemSet());
    report_.per_op_cost.assign(num_ops, 0.0);
    report_.per_op_seconds.assign(num_ops, 0.0);
    report_.per_op_cache.assign(num_ops, '-');
    report_.emulated_semijoins = 0;
    report_.skipped_ops = 0;
    CallStats stats;
    for (size_t k = 0; k < num_ops; ++k) {
      report_.per_op_cost[k] = op_ledgers_[k].total();
      report_.per_op_seconds[k] = op_seconds_[k];
      const CallStats& s = op_stats_[k];
      if (s.cache_misses > s.cache_containment_hits) {
        report_.per_op_cache[k] = 'm';
      } else if (s.cache_containment_hits > 0) {
        report_.per_op_cache[k] = 'c';
      } else if (s.cache_hits > 0) {
        report_.per_op_cache[k] = 'h';
      }
      report_.ledger.MergeFrom(std::move(op_ledgers_[k]));
      stats.MergeFrom(op_stats_[k]);
      report_.emulated_semijoins += op_emulated_[k];
      const int source = plan_.ops()[k].source;
      if (source >= 0) {
        report_.per_source_items[static_cast<size_t>(source)].UnionInPlace(
            op_observed_[k]);
      }
    }
    report_.answer = *items_[plan_.result()];
    report_.retries_total = stats.retries;
    report_.cache_hits = stats.cache_hits;
    report_.cache_misses = stats.cache_misses;
    report_.cache_containment_hits = stats.cache_containment_hits;
    report_.breaker_fast_fails = stats.breaker_fast_fails;
    report_.semijoin_probes_skipped = stats.semijoin_probes_skipped;
    exec_internal::BuildCompletenessReport(plan_, op_reasons_,
                                           &report_.completeness);
    return Status::Ok();
  }

 private:
  void BuildDependencies() {
    const size_t num_ops = plan_.num_ops();
    std::vector<int> var_def(plan_.vars().size(), -1);
    std::vector<int> last_on_source;
    for (size_t k = 0; k < num_ops; ++k) {
      const PlanOp& op = plan_.ops()[k];
      std::vector<int> deps;
      if (op.input >= 0) deps.push_back(var_def[op.input]);
      for (int v : op.inputs) deps.push_back(var_def[v]);
      if (op.source >= 0) {
        // Same-source ops serialize in plan order: a source answers one
        // query at a time (the model ComputeResponseTime prices).
        if (static_cast<size_t>(op.source) >= last_on_source.size()) {
          last_on_source.resize(static_cast<size_t>(op.source) + 1, -1);
        }
        int& last = last_on_source[static_cast<size_t>(op.source)];
        if (last >= 0) deps.push_back(last);
        last = static_cast<int>(k);
      }
      std::sort(deps.begin(), deps.end());
      deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
      for (int d : deps) {
        dependents_[static_cast<size_t>(d)].push_back(static_cast<int>(k));
        ++pending_[k];
      }
      var_def[op.target] = static_cast<int>(k);
    }
  }

  /// Requires mu_ held.
  void Dispatch(size_t k) {
    ++scheduled_;
    // The pool pointer rides in the task (not read from the member) so the
    // backoff-compensation hook needs no lock in the workers.
    pool_->Submit([this, k, pool = pool_] { RunOp(k, pool); });
  }

  void RunOp(size_t k, ThreadPool* pool) {
    Status status;
    {
      // The plan_op span covers the evaluation *and* the simulated-latency
      // sleep, so traced parallel runs show real wall-clock overlap between
      // ops on distinct worker threads.
      const PlanOp& op = plan_.ops()[k];
      ScopedSpan span(SpanCategory::kPlanOp, PlanOpKindName(op.kind));
      if (span.active()) {
        span.AddAttr("op", static_cast<int64_t>(k));
        span.AddAttr("target", plan_.var(op.target).name);
        if (op.source >= 0) {
          span.AddAttr("source",
                       catalog_.source(static_cast<size_t>(op.source)).name());
        }
        if (op.cond >= 0) span.AddAttr("cond", static_cast<int64_t>(op.cond));
      }
      const auto op_start = std::chrono::steady_clock::now();
      status = EvalOp(k, pool);
      op_seconds_[k] = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - op_start)
                           .count();
      if (status.ok()) {
        span.AddAttr("cost", op_ledgers_[k].total());
        if (!op_reasons_[k].empty()) span.AddAttr("degraded", op_reasons_[k]);
        // The op "takes" as long as it cost (scaled); dependents and the
        // next query to this source wait for completion, so makespans
        // compose.
        exec_internal::SleepForCost(op_ledgers_[k].total(), options_);
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (!status.ok()) {
      if (!failed_) {
        failed_ = true;
        error_ = status;
      }
    } else if (!failed_) {
      for (const int d : dependents_[k]) {
        if (--pending_[static_cast<size_t>(d)] == 0) {
          Dispatch(static_cast<size_t>(d));
        }
      }
    }
    ++finished_;
    done_cv_.notify_all();
  }

  /// The fault-tolerance call context for op k's source interactions.
  CallContext ContextFor(const char* op_name, const SourceWrapper& src,
                         size_t k, int source, CostLedger& ledger,
                         ThreadPool* pool) {
    CallContext ctx;
    ctx.op = op_name;
    ctx.source_name = &src.name();
    ctx.ledger = &ledger;
    ctx.stats = &op_stats_[k];
    ctx.retry = &options_.retry;
    ctx.fault = fault_;
    ctx.health = options_.health;
    ctx.source_index = source;
    ctx.blocking_pool = pool;
    return ctx;
  }

  /// Degraded-mode absorption (op-private: each op writes only its own
  /// reason slot). See PlanInterpreter::HandleSourceFailure.
  Status HandleSourceFailure(size_t k, const PlanOp& op, const Status& status) {
    if (options_.on_source_failure != SourceFailurePolicy::kDegrade ||
        degradable_.empty() || degradable_[k] == 0 ||
        !exec_internal::IsDegradableFailure(status)) {
      return status;
    }
    op_reasons_[k] = status.ToString();
    if (op.kind == PlanOpKind::kLoad) {
      relations_[op.target] = Relation(
          catalog_.source(static_cast<size_t>(op.source)).schema());
    } else {
      items_[op.target] = ItemSet();
    }
    return Status::Ok();
  }

  /// Evaluates one op whose dependencies are complete. Mirrors the eager
  /// branch of the sequential interpreter op-for-op; all writes go to
  /// op-private slots (ledger, observations, the SSA target variable).
  Status EvalOp(size_t k, ThreadPool* pool) {
    const PlanOp& op = plan_.ops()[k];
    CostLedger& ledger = op_ledgers_[k];
    switch (op.kind) {
      case PlanOpKind::kSelect: {
        SourceWrapper& src = catalog_.source(static_cast<size_t>(op.source));
        const Condition& cond =
            query_.conditions()[static_cast<size_t>(op.cond)];
        Result<ItemSet> result = exec_internal::CachedSelect(
            src, cond, query_.merge_attribute(), options_, ledger,
            ContextFor("sq", src, k, op.source, ledger, pool));
        if (!result.ok()) return HandleSourceFailure(k, op, result.status());
        op_observed_[k] = *result;
        items_[op.target] = std::move(result).value();
        break;
      }
      case PlanOpKind::kSemiJoin: {
        const ItemSet& candidates = *items_[op.input];
        SourceWrapper& src = catalog_.source(static_cast<size_t>(op.source));
        const Condition& cond =
            query_.conditions()[static_cast<size_t>(op.cond)];
        bool emulated = false;
        Result<ItemSet> result = exec_internal::CachedSemiJoin(
            src, cond, query_.merge_attribute(), candidates, options_, ledger,
            ContextFor("sjq", src, k, op.source, ledger, pool), &emulated);
        if (!result.ok()) {
          return HandleSourceFailure(k, op, result.status());
        }
        op_observed_[k] = *result;
        items_[op.target] = std::move(result).value();
        if (emulated) {
          op_emulated_[k] = 1;
          static Counter& counter =
              MetricsRegistry::Global().counter(metrics::kEmulatedSemijoins);
          counter.Increment();
        }
        break;
      }
      case PlanOpKind::kLoad: {
        SourceWrapper& src = catalog_.source(static_cast<size_t>(op.source));
        Result<Relation> loaded = exec_internal::CachedLoad(
            src, options_, ledger,
            ContextFor("lq", src, k, op.source, ledger, pool));
        if (!loaded.ok()) return HandleSourceFailure(k, op, loaded.status());
        FUSION_ASSIGN_OR_RETURN(
            ItemSet all_items,
            loaded->SelectItems(Condition::True(), query_.merge_attribute()));
        op_observed_[k] = std::move(all_items);
        relations_[op.target] = std::move(loaded).value();
        break;
      }
      case PlanOpKind::kLocalSelect: {
        if (!relations_[op.input].has_value()) {
          return Status::Internal("local select over unloaded relation var");
        }
        FUSION_ASSIGN_OR_RETURN(
            ItemSet result,
            relations_[op.input]->SelectItems(
                query_.conditions()[static_cast<size_t>(op.cond)],
                query_.merge_attribute()));
        items_[op.target] = std::move(result);
        break;
      }
      case PlanOpKind::kUnion: {
        ItemSet acc;
        for (int v : op.inputs) {
          acc.UnionInPlace(*items_[v]);
        }
        items_[op.target] = std::move(acc);
        break;
      }
      case PlanOpKind::kIntersect: {
        std::optional<ItemSet> acc;
        for (int v : op.inputs) {
          acc = acc.has_value() ? ItemSet::Intersect(*acc, *items_[v])
                                : *items_[v];
        }
        items_[op.target] = std::move(*acc);
        break;
      }
      case PlanOpKind::kDifference: {
        items_[op.target] = ItemSet::Difference(*items_[op.inputs[0]],
                                                *items_[op.inputs[1]]);
        break;
      }
    }
    return Status::Ok();
  }

  const Plan& plan_;
  const SourceCatalog& catalog_;
  const FusionQuery& query_;
  const ExecOptions& options_;
  exec_internal::FaultState* fault_;
  ExecutionReport& report_;

  // Dependency DAG (immutable after construction).
  std::vector<std::vector<int>> dependents_;
  std::vector<char> degradable_;  // empty unless on_source_failure=kDegrade

  // Op-private result slots; written by exactly one worker each.
  std::vector<std::optional<ItemSet>> items_;        // per SSA variable
  std::vector<std::optional<Relation>> relations_;   // per SSA variable
  std::vector<CostLedger> op_ledgers_;
  std::vector<CallStats> op_stats_;
  std::vector<double> op_seconds_;
  std::vector<ItemSet> op_observed_;
  std::vector<char> op_emulated_;
  std::vector<std::string> op_reasons_;  // non-empty iff op ∅-substituted

  // Scheduler state, guarded by mu_.
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::vector<int> pending_;  // unmet dependency counts
  ThreadPool* pool_ = nullptr;
  size_t scheduled_ = 0;
  size_t finished_ = 0;
  bool failed_ = false;
  Status error_;
};

}  // namespace

Status ExecutePlanParallel(const Plan& plan, const SourceCatalog& catalog,
                           const FusionQuery& query, const ExecOptions& options,
                           exec_internal::FaultState* fault,
                           ExecutionReport& report) {
  ParallelPlanRun run(plan, catalog, query, options, fault, report);
  return run.Run();
}

}  // namespace fusion
