#include "exec/thread_pool.h"

#include <utility>

#include "obs/trace.h"

namespace fusion {

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  // Tasks inherit the submitter's trace context, so spans opened by pool
  // workers (plan ops, source calls) parent under the span that fanned the
  // work out instead of starting orphan traces.
  TraceContext context = Tracer::CurrentContext();
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back([context, task = std::move(task)] {
      TraceContextScope scope(context);
      task();
    });
  }
  work_cv_.notify_one();
}

void ThreadPool::BeginBlocking() {
  std::unique_lock<std::mutex> lock(mu_);
  ++blocked_;
  // One replacement worker per concurrently blocked task keeps the number
  // of *runnable* workers at the configured parallelism. Compensation
  // workers are never retired early — they idle on the queue and join with
  // everyone else at destruction (a plan-scoped pool is short-lived).
  if (spawned_for_blocking_ < blocked_) {
    ++spawned_for_blocking_;
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::EndBlocking() {
  std::unique_lock<std::mutex> lock(mu_);
  --blocked_;
}

size_t ThreadPool::num_threads() const {
  std::unique_lock<std::mutex> lock(mu_);
  return workers_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-before-stop: stopping_ only wins once the queue is empty, so a
      // joined pool has executed everything ever submitted.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace fusion
