#ifndef FUSION_EXEC_PARALLEL_EXECUTOR_H_
#define FUSION_EXEC_PARALLEL_EXECUTOR_H_

#include "common/status.h"
#include "exec/executor.h"
#include "plan/plan.h"
#include "query/fusion_query.h"
#include "source/catalog.h"

namespace fusion {

namespace exec_internal {
class FaultState;
}  // namespace exec_internal

/// Dependency-scheduled parallel plan execution (the realization of the
/// response-time model in plan/response_time.h): walks the plan's op DAG
/// with a thread pool of options.parallelism workers, dispatching every
/// data-independent source query concurrently and joining results through
/// the local ∪ / ∩ / − ops. Queries to the same source serialize in plan
/// order (a source answers one query at a time — also what keeps per-source
/// wrapper state like retry counters and lazily built indexes race-free
/// within one execution).
///
/// Semantics are identical to the eager sequential interpreter: the answer,
/// emulated-semijoin count, per-op costs, and the merged ledger (charges in
/// plan-op order, so even floating-point totals match) are the same; only
/// wall-clock time shrinks. Called through ExecutePlan when
/// options.parallelism > 1; `report` is filled on success.
///
/// Fault tolerance mirrors the sequential path: `fault` carries the shared
/// per-query deadline / cost budget, retry backoff sleeps release their
/// worker slot (ThreadPool::BeginBlocking), and under kDegrade each op
/// absorbs its own source failure into an op-private exclusion slot, merged
/// into report.completeness after the pool joins.
Status ExecutePlanParallel(const Plan& plan, const SourceCatalog& catalog,
                           const FusionQuery& query, const ExecOptions& options,
                           exec_internal::FaultState* fault,
                           ExecutionReport& report);

}  // namespace fusion

#endif  // FUSION_EXEC_PARALLEL_EXECUTOR_H_
