#ifndef FUSION_EXEC_SOURCE_HEALTH_H_
#define FUSION_EXEC_SOURCE_HEALTH_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fusion {

/// Per-source circuit breakers shared across the queries of a session: one
/// query's pain informs the next. An Internet source that stopped answering
/// should not be charged a full retry ladder on every subsequent call — after
/// `failure_threshold` consecutive failures the breaker *opens* and calls
/// fail fast with kUnavailable, issuing no source round-trip and leaving no
/// ledger charge. After `open_cooldown_rejections` fast-fails the next call
/// is admitted as a *half-open probe*: its success closes the breaker, its
/// failure re-opens it for another cool-down.
///
/// The cool-down is counted in rejected calls, not wall-clock time, so
/// breaker behaviour is deterministic under test and independent of machine
/// speed; an idle breaker simply probes on the next call after its quota of
/// rejections.
///
///   closed ──(failure_threshold consecutive failures)──▶ open
///   open ──(open_cooldown_rejections fast-fails)──▶ half-open (one probe)
///   half-open ──probe ok──▶ closed          half-open ──probe fails──▶ open
///
/// Thread-safety: all methods are internally synchronized; the parallel
/// executor's workers may Admit/Record concurrently. During half-open,
/// exactly one caller is admitted as the probe — concurrent callers keep
/// fast-failing until the probe settles, so a recovering source is not
/// stampeded.
class SourceHealth {
 public:
  struct Options {
    /// Consecutive failures (across calls and retry attempts, shared by all
    /// queries using this SourceHealth) that open the breaker.
    int failure_threshold = 5;
    /// Fast-failed calls absorbed while open before a half-open probe is
    /// admitted.
    int open_cooldown_rejections = 1;
  };

  enum class BreakerState { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  struct Admission {
    bool allowed = true;
    /// True when this call is the half-open probe: its outcome decides
    /// whether the breaker closes or re-opens.
    bool probe = false;
  };

  SourceHealth() : SourceHealth(Options()) {}
  explicit SourceHealth(const Options& options) : options_(options) {}

  SourceHealth(const SourceHealth&) = delete;
  SourceHealth& operator=(const SourceHealth&) = delete;

  /// Gate for one source-call attempt. A disallowed admission means the
  /// caller must fail fast with kUnavailable and issue no round-trip.
  /// `source_name`, when given, keeps the breaker_state.<name> gauge fresh.
  Admission Admit(size_t source, const std::string* source_name = nullptr);

  /// Report one attempt's outcome (every attempt, retries included).
  void RecordSuccess(size_t source, const std::string* source_name = nullptr);
  void RecordFailure(size_t source, const std::string* source_name = nullptr);

  BreakerState state(size_t source) const;
  /// Consecutive-failure count while closed (resets on success).
  int consecutive_failures(size_t source) const;
  /// Calls fast-failed by an open breaker, cumulative.
  size_t fast_fails(size_t source) const;

  /// Forgets all breaker state (e.g. between unrelated federations).
  void Reset();

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    int rejections_since_open = 0;
    bool probe_in_flight = false;
    size_t fast_fails = 0;
  };

  /// Requires mu_ held; grows the table on first contact with a source.
  Breaker& BreakerFor(size_t source);
  void PublishState(const Breaker& breaker, const std::string* source_name);

  const Options options_;
  mutable std::mutex mu_;
  std::vector<Breaker> breakers_;
};

}  // namespace fusion

#endif  // FUSION_EXEC_SOURCE_HEALTH_H_
