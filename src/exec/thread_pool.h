#ifndef FUSION_EXEC_THREAD_POOL_H_
#define FUSION_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fusion {

/// A fixed-size worker pool executing submitted closures in FIFO order.
/// Built for the parallel plan executor: one pool per plan execution, sized
/// by ExecOptions::parallelism, so concurrent source round-trips overlap.
///
/// Thread-safety contract: Submit may be called from any thread (including
/// pool workers, which is how the dependency scheduler fans out newly ready
/// ops). The destructor drains every task already submitted — including
/// tasks those tasks submit — and then joins the workers, so a joined pool
/// implies all submitted work has completed (happens-before the join).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after the destructor has begun.
  void Submit(std::function<void()> task);

  /// Declares that the calling task is about to block *off-CPU* for a while
  /// (a retry backoff sleep, not a source round-trip) and should not hold
  /// one of the pool's execution slots while it does. The pool compensates
  /// by spawning one replacement worker (at most one per concurrently
  /// blocked task), so ready work keeps draining at the configured
  /// parallelism even while calls back off. Must be paired with
  /// EndBlocking from the same task, and — like Submit — must not be called
  /// once the destructor has begun (the executor joins all tasks first).
  void BeginBlocking();
  void EndBlocking();

  size_t num_threads() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  size_t blocked_ = 0;    // tasks currently inside Begin/EndBlocking
  size_t spawned_for_blocking_ = 0;  // compensation workers created
  std::vector<std::thread> workers_;
};

}  // namespace fusion

#endif  // FUSION_EXEC_THREAD_POOL_H_
