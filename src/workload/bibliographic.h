#ifndef FUSION_WORKLOAD_BIBLIOGRAPHIC_H_
#define FUSION_WORKLOAD_BIBLIOGRAPHIC_H_

#include <cstdint>

#include "workload/synthetic.h"

namespace fusion {

/// The introduction's bibliographic-search scenario: several overlapping
/// digital libraries index documents (DOC:int64 id, TOPIC, YEAR, VENUE,
/// TITLE); a fusion query first identifies document ids matching criteria
/// scattered across libraries (phase 1), then full records are fetched a few
/// at a time (phase 2). Records are wide (large record_width_factor), which
/// is exactly why the two-phase split pays off.
struct BibliographicSpec {
  size_t num_libraries = 6;
  size_t num_documents = 8000;
  /// Mean fraction of the corpus each library indexes.
  double coverage = 0.4;
  /// Fraction of documents per topic (condition selectivity lever).
  double topic_fraction = 0.08;
  int64_t year_lo = 1980;
  int64_t year_hi = 1997;
  /// Full records are wide relative to bare ids.
  double record_width_factor = 40.0;
  uint64_t seed = 11;
};

/// Generates libraries plus the query: TOPIC = 'databases' AND
/// YEAR >= 1995 AND VENUE = 'conference'.
Result<SyntheticInstance> GenerateBibliographic(const BibliographicSpec& spec);

}  // namespace fusion

#endif  // FUSION_WORKLOAD_BIBLIOGRAPHIC_H_
