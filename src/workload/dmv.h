#ifndef FUSION_WORKLOAD_DMV_H_
#define FUSION_WORKLOAD_DMV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/synthetic.h"

namespace fusion {

/// Builds the exact three-source DMV instance of Figure 1 of the paper
/// (schema L:string, V:string, D:int64) with every source natively
/// semijoin-capable and unit network costs. The canonical fusion query —
/// drivers with both a 'dui' and an 'sp' violation — is returned alongside;
/// its answer on this data is {J55, T21}.
Result<SyntheticInstance> BuildDmvFigure1();

/// The fusion query of the paper's Section 1 over the Figure 1 schema.
FusionQuery DmvFigure1Query();

/// Parameters of the scaled DMV scenario: `num_states` autonomous DMV
/// databases; violations are recorded in the state where they occur
/// (state popularity Zipf-skewed), with an optional copy to the driver's
/// home state (partial notification — exactly the non-partitionable mess
/// the paper's introduction motivates).
struct DmvSpec {
  size_t num_states = 50;
  size_t num_drivers = 5000;
  double violations_per_driver = 2.0;
  /// Probability an out-of-state violation is also reported to the home
  /// state (the "California DMV may not have complete records" effect).
  double home_notification_prob = 0.3;
  double state_zipf_theta = 0.8;
  /// Violation kinds to draw from, with weights.
  std::vector<std::string> violation_kinds = {"dui", "sp", "reckless",
                                              "parking", "redlight"};
  std::vector<double> violation_weights = {1.0, 3.0, 1.0, 5.0, 2.0};
  /// Year range for the D attribute.
  int64_t year_lo = 1990;
  int64_t year_hi = 1997;

  /// Capability / network heterogeneity (subset of states are legacy systems
  /// without semijoin support).
  double frac_native_semijoin = 0.6;
  double frac_passed_bindings = 0.3;
  uint64_t seed = 7;
};

/// Generates the scaled DMV scenario and the dui ∧ sp query over it.
Result<SyntheticInstance> GenerateDmv(const DmvSpec& spec);

}  // namespace fusion

#endif  // FUSION_WORKLOAD_DMV_H_
