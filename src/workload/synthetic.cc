#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.h"
#include "common/str_util.h"

namespace fusion {

Result<SyntheticInstance> GenerateSynthetic(const SyntheticSpec& spec) {
  if (spec.universe_size == 0 || spec.num_sources == 0 ||
      spec.num_conditions == 0) {
    return Status::InvalidArgument("synthetic spec has a zero dimension");
  }
  if (spec.frac_native_semijoin + spec.frac_passed_bindings > 1.0 + 1e-9) {
    return Status::InvalidArgument("capability fractions exceed 1");
  }

  Rng rng(spec.seed);
  const size_t m = spec.num_conditions;
  const size_t n = spec.num_sources;

  // Schema: M plus one flag column per condition.
  std::vector<ColumnDef> columns;
  columns.push_back({"M", ValueType::kInt64});
  for (size_t i = 0; i < m; ++i) {
    columns.push_back({StrFormat("A%zu", i + 1), ValueType::kInt64});
  }
  const Schema schema{Schema(std::move(columns))};

  // Per-source coverage with optional Zipf skew, rescaled to the mean.
  std::vector<double> coverage(n);
  {
    double sum = 0;
    for (size_t j = 0; j < n; ++j) {
      coverage[j] = 1.0 / std::pow(static_cast<double>(j + 1),
                                   spec.zipf_theta);
      sum += coverage[j];
    }
    for (size_t j = 0; j < n; ++j) {
      coverage[j] = std::min(1.0, coverage[j] / sum *
                                      static_cast<double>(n) * spec.coverage);
    }
  }

  // Per-(condition, source) selectivity with jitter.
  auto base_selectivity = [&](size_t i) {
    return i < spec.selectivity.size() ? spec.selectivity[i]
                                       : spec.selectivity_default;
  };
  std::vector<std::vector<double>> sel(n, std::vector<double>(m));
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < m; ++i) {
      const double jitter =
          1.0 + spec.selectivity_jitter * (2.0 * rng.NextDouble() - 1.0);
      sel[j][i] = std::clamp(base_selectivity(i) * jitter, 0.0, 1.0);
    }
  }

  // In the partitioned regime each entity is assigned one home source.
  std::vector<size_t> home;
  if (spec.partition_entities) {
    home.resize(spec.universe_size);
    for (size_t e = 0; e < spec.universe_size; ++e) {
      home[e] = rng.Discrete(coverage);
    }
  }

  // Per-entity latent factor inducing cross-condition correlation: an
  // entity's flag probabilities all scale by (1-c) + 2c·z, preserving the
  // marginal selectivities in expectation (E[2z] = 1).
  std::vector<double> latent;
  if (spec.condition_correlation > 0.0) {
    latent.resize(spec.universe_size);
    for (size_t e = 0; e < spec.universe_size; ++e) {
      latent[e] = rng.NextDouble();
    }
  }
  const double corr = std::clamp(spec.condition_correlation, 0.0, 1.0);

  SyntheticInstance instance;
  for (size_t j = 0; j < n; ++j) {
    Relation relation(schema);
    for (size_t e = 0; e < spec.universe_size; ++e) {
      if (spec.partition_entities) {
        if (home[e] != j) continue;
      } else if (!rng.Bernoulli(coverage[j])) {
        continue;
      }
      Tuple t;
      t.reserve(1 + m);
      t.push_back(Value(static_cast<int64_t>(e)));
      const double scale =
          corr > 0.0 ? (1.0 - corr) + 2.0 * corr * latent[e] : 1.0;
      for (size_t i = 0; i < m; ++i) {
        const double p = std::clamp(sel[j][i] * scale, 0.0, 1.0);
        t.push_back(Value(static_cast<int64_t>(rng.Bernoulli(p))));
      }
      relation.AppendUnchecked(std::move(t));
    }

    Capabilities caps;
    const double r = rng.NextDouble();
    if (r < spec.frac_native_semijoin) {
      caps.semijoin = SemijoinSupport::kNative;
    } else if (r < spec.frac_native_semijoin + spec.frac_passed_bindings) {
      caps.semijoin = SemijoinSupport::kPassedBindingsOnly;
    } else {
      caps.semijoin = SemijoinSupport::kUnsupported;
    }

    NetworkProfile net;
    net.query_overhead =
        spec.overhead_min +
        rng.NextDouble() * (spec.overhead_max - spec.overhead_min);
    net.cost_per_item_sent =
        spec.send_min + rng.NextDouble() * (spec.send_max - spec.send_min);
    net.cost_per_item_received =
        spec.recv_min + rng.NextDouble() * (spec.recv_max - spec.recv_min);
    net.processing_per_tuple = spec.processing_per_tuple;
    net.record_width_factor =
        spec.width_min + rng.NextDouble() * (spec.width_max - spec.width_min);

    auto source = std::make_unique<SimulatedSource>(
        StrFormat("R%zu", j + 1), std::move(relation), caps, net);
    instance.simulated.push_back(source.get());
    FUSION_RETURN_IF_ERROR(instance.catalog.Add(std::move(source)));
  }

  std::vector<Condition> conditions;
  conditions.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    conditions.push_back(
        Condition::Eq(StrFormat("A%zu", i + 1), Value(int64_t{1})));
  }
  instance.query = FusionQuery("M", std::move(conditions));
  return instance;
}

std::vector<const Relation*> RelationsOf(const SyntheticInstance& instance) {
  std::vector<const Relation*> out;
  out.reserve(instance.simulated.size());
  for (const SimulatedSource* s : instance.simulated) {
    out.push_back(&s->relation());
  }
  return out;
}

}  // namespace fusion
