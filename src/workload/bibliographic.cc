#include "workload/bibliographic.h"

#include <memory>

#include "common/rng.h"
#include "common/str_util.h"

namespace fusion {

Result<SyntheticInstance> GenerateBibliographic(
    const BibliographicSpec& spec) {
  if (spec.num_libraries == 0 || spec.num_documents == 0) {
    return Status::InvalidArgument("bibliographic spec has a zero dimension");
  }
  Rng rng(spec.seed);
  const Schema schema({{"DOC", ValueType::kInt64},
                       {"TOPIC", ValueType::kString},
                       {"YEAR", ValueType::kInt64},
                       {"VENUE", ValueType::kString},
                       {"TITLE", ValueType::kString}});

  const std::vector<std::string> topics = {
      "databases", "networks", "theory", "graphics", "systems", "ai"};
  const std::vector<std::string> venues = {"conference", "journal",
                                           "workshop"};
  // Fixed per-document ground truth (so overlapping copies agree).
  struct Doc {
    std::string topic;
    int64_t year;
    std::string venue;
  };
  std::vector<Doc> docs(spec.num_documents);
  for (size_t d = 0; d < spec.num_documents; ++d) {
    docs[d].topic = rng.Bernoulli(spec.topic_fraction)
                        ? topics[0]
                        : topics[1 + static_cast<size_t>(rng.Uniform(
                                     0, static_cast<int64_t>(topics.size()) -
                                            2))];
    docs[d].year = rng.Uniform(spec.year_lo, spec.year_hi);
    docs[d].venue =
        venues[static_cast<size_t>(rng.Uniform(0, 2))];
  }

  SyntheticInstance instance;
  for (size_t j = 0; j < spec.num_libraries; ++j) {
    Relation relation(schema);
    for (size_t d = 0; d < spec.num_documents; ++d) {
      if (!rng.Bernoulli(spec.coverage)) continue;
      FUSION_RETURN_IF_ERROR(relation.Append(
          {Value(static_cast<int64_t>(d)), Value(docs[d].topic),
           Value(docs[d].year), Value(docs[d].venue),
           Value(StrFormat("Title of document %zu", d))}));
    }
    Capabilities caps;
    caps.semijoin = (j % 3 == 2) ? SemijoinSupport::kPassedBindingsOnly
                                 : SemijoinSupport::kNative;
    NetworkProfile net;
    net.query_overhead = 8.0 + rng.NextDouble() * 10.0;
    net.cost_per_item_sent = 1.0;
    net.cost_per_item_received = 1.0;
    net.processing_per_tuple = 0.002;
    net.record_width_factor = spec.record_width_factor;
    auto src = std::make_unique<SimulatedSource>(
        StrFormat("LIB%zu", j + 1), std::move(relation), caps, net);
    instance.simulated.push_back(src.get());
    FUSION_RETURN_IF_ERROR(instance.catalog.Add(std::move(src)));
  }
  instance.query = FusionQuery(
      "DOC",
      {Condition::Eq("TOPIC", Value("databases")),
       Condition::Compare("YEAR", CompareOp::kGe, Value(int64_t{1995})),
       Condition::Eq("VENUE", Value("conference"))});
  return instance;
}

}  // namespace fusion
