#ifndef FUSION_WORKLOAD_SYNTHETIC_H_
#define FUSION_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "query/fusion_query.h"
#include "source/catalog.h"
#include "source/simulated_source.h"

namespace fusion {

/// A generated experiment instance: n simulated sources sharing one schema,
/// and a fusion query over them. `simulated` holds non-owning views of the
/// catalog's wrappers (stable across moves of the instance).
struct SyntheticInstance {
  SourceCatalog catalog;
  FusionQuery query;
  std::vector<const SimulatedSource*> simulated;
};

/// Parameters of the synthetic fusion workload. The data model: a universe
/// of `universe_size` entities (merge attribute M, int64 ids 0..U-1); entity
/// e appears in source j with that source's coverage probability; a tuple
/// carries one boolean flag column per condition (A1..Am), set with the
/// per-(condition, source) selectivity. Condition c_i is `A_i = 1`. This
/// realizes the paper's setting: overlapping, incomplete sources where any
/// condition can be satisfied for an entity at any source.
struct SyntheticSpec {
  size_t universe_size = 10000;
  size_t num_sources = 10;
  size_t num_conditions = 3;

  /// Mean probability an entity appears in a given source.
  double coverage = 0.3;
  /// Skew of coverage across sources: coverage_j ∝ 1/(j+1)^zipf_theta,
  /// rescaled so the mean stays `coverage`. 0 = uniform.
  double zipf_theta = 0.0;

  /// Per-condition base selectivity (prob a tuple's flag is set). Entries
  /// beyond the vector default to `selectivity_default`.
  std::vector<double> selectivity;
  double selectivity_default = 0.05;
  /// Per-source multiplicative jitter on selectivity, uniform in
  /// [1 - jitter, 1 + jitter] (heterogeneous sources).
  double selectivity_jitter = 0.5;

  /// Correlation between conditions, in [0, 1]. 0 (default) = per-tuple
  /// flags are independent, the regime where the paper proves SJA finds the
  /// best simple plan. Higher values introduce a per-entity latent factor z
  /// ~ U(0,1) scaling every condition's probability (p_i(z) ∝ (1-c) + 2cz),
  /// so entities that satisfy one condition tend to satisfy the others —
  /// the setting where the paper only claims SJA is "an excellent
  /// heuristic" (bench_correlation quantifies that claim).
  double condition_correlation = 0.0;

  /// Traditional distributed-database regime (the contrast case in the
  /// paper's introduction): every entity lives in exactly one source
  /// (chosen proportionally to the coverage weights), so information is
  /// never fused across sources. With overlapping data (the default, false)
  /// an entity may appear in any subset of sources.
  bool partition_entities = false;

  /// Capability mix: fractions of sources with native semijoin support and
  /// with passed-bindings-only support; the rest support no semijoins.
  double frac_native_semijoin = 1.0;
  double frac_passed_bindings = 0.0;

  /// Network heterogeneity: per-source parameters drawn uniformly from
  /// these ranges.
  double overhead_min = 5.0, overhead_max = 20.0;
  double send_min = 0.5, send_max = 2.0;
  double recv_min = 0.5, recv_max = 2.0;
  double processing_per_tuple = 0.001;
  double width_min = 2.0, width_max = 8.0;

  uint64_t seed = 1;
};

/// Generates sources + query per the spec. Deterministic in `spec.seed`.
Result<SyntheticInstance> GenerateSynthetic(const SyntheticSpec& spec);

/// Convenience view for APIs that take raw relations.
std::vector<const Relation*> RelationsOf(const SyntheticInstance& instance);

}  // namespace fusion

#endif  // FUSION_WORKLOAD_SYNTHETIC_H_
