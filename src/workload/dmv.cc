#include "workload/dmv.h"

#include <memory>

#include "common/rng.h"
#include "common/str_util.h"

namespace fusion {
namespace {

Schema DmvSchema() {
  return Schema({{"L", ValueType::kString},
                 {"V", ValueType::kString},
                 {"D", ValueType::kInt64}});
}

Status AppendViolation(Relation& r, const std::string& license,
                       const std::string& violation, int64_t year) {
  return r.Append({Value(license), Value(violation), Value(year)});
}

}  // namespace

FusionQuery DmvFigure1Query() {
  return FusionQuery(
      "L", {Condition::Eq("V", Value("dui")), Condition::Eq("V", Value("sp"))});
}

Result<SyntheticInstance> BuildDmvFigure1() {
  const Schema schema = DmvSchema();

  Relation r1(schema);
  FUSION_RETURN_IF_ERROR(AppendViolation(r1, "J55", "dui", 1993));
  FUSION_RETURN_IF_ERROR(AppendViolation(r1, "T21", "sp", 1994));
  FUSION_RETURN_IF_ERROR(AppendViolation(r1, "T80", "dui", 1993));

  Relation r2(schema);
  FUSION_RETURN_IF_ERROR(AppendViolation(r2, "T21", "dui", 1996));
  FUSION_RETURN_IF_ERROR(AppendViolation(r2, "J55", "sp", 1996));
  FUSION_RETURN_IF_ERROR(AppendViolation(r2, "T11", "sp", 1993));

  Relation r3(schema);
  FUSION_RETURN_IF_ERROR(AppendViolation(r3, "T21", "sp", 1993));
  FUSION_RETURN_IF_ERROR(AppendViolation(r3, "S07", "sp", 1996));
  FUSION_RETURN_IF_ERROR(AppendViolation(r3, "S07", "sp", 1993));

  Capabilities caps;  // native semijoin, loads allowed
  NetworkProfile net;
  net.query_overhead = 10.0;
  net.cost_per_item_sent = 1.0;
  net.cost_per_item_received = 1.0;
  net.processing_per_tuple = 0.01;
  net.record_width_factor = 3.0;

  SyntheticInstance instance;
  Relation* rels[] = {&r1, &r2, &r3};
  for (size_t j = 0; j < 3; ++j) {
    auto src = std::make_unique<SimulatedSource>(
        StrFormat("R%zu", j + 1), std::move(*rels[j]), caps, net);
    instance.simulated.push_back(src.get());
    FUSION_RETURN_IF_ERROR(instance.catalog.Add(std::move(src)));
  }
  instance.query = DmvFigure1Query();
  return instance;
}

Result<SyntheticInstance> GenerateDmv(const DmvSpec& spec) {
  if (spec.num_states == 0 || spec.num_drivers == 0) {
    return Status::InvalidArgument("dmv spec has a zero dimension");
  }
  if (spec.violation_kinds.empty() ||
      spec.violation_kinds.size() != spec.violation_weights.size()) {
    return Status::InvalidArgument("bad violation kind/weight vectors");
  }
  Rng rng(spec.seed);
  const Schema schema = DmvSchema();
  std::vector<Relation> relations(spec.num_states, Relation(schema));
  const ZipfSampler state_sampler(spec.num_states, spec.state_zipf_theta);

  for (size_t d = 0; d < spec.num_drivers; ++d) {
    const std::string license = StrFormat("L%06zu", d);
    const size_t home = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(spec.num_states) - 1));
    // Poisson-ish violation count via Bernoulli thinning of a cap.
    const double lambda = spec.violations_per_driver;
    const int max_v = static_cast<int>(lambda * 4) + 1;
    for (int v = 0; v < max_v; ++v) {
      if (!rng.Bernoulli(lambda / max_v)) continue;
      const size_t kind = rng.Discrete(spec.violation_weights);
      const int64_t year = rng.Uniform(spec.year_lo, spec.year_hi);
      const size_t state = state_sampler.Sample(rng);
      FUSION_RETURN_IF_ERROR(AppendViolation(
          relations[state], license, spec.violation_kinds[kind], year));
      if (state != home && rng.Bernoulli(spec.home_notification_prob)) {
        FUSION_RETURN_IF_ERROR(AppendViolation(
            relations[home], license, spec.violation_kinds[kind], year));
      }
    }
  }

  SyntheticInstance instance;
  for (size_t j = 0; j < spec.num_states; ++j) {
    Capabilities caps;
    const double r = rng.NextDouble();
    if (r < spec.frac_native_semijoin) {
      caps.semijoin = SemijoinSupport::kNative;
    } else if (r < spec.frac_native_semijoin + spec.frac_passed_bindings) {
      caps.semijoin = SemijoinSupport::kPassedBindingsOnly;
    } else {
      caps.semijoin = SemijoinSupport::kUnsupported;
    }
    NetworkProfile net;
    net.query_overhead = 5.0 + rng.NextDouble() * 20.0;
    net.cost_per_item_sent = 0.5 + rng.NextDouble() * 1.5;
    net.cost_per_item_received = 0.5 + rng.NextDouble() * 1.5;
    net.processing_per_tuple = 0.002;
    net.record_width_factor = 3.0 + rng.NextDouble() * 3.0;
    auto src = std::make_unique<SimulatedSource>(
        StrFormat("DMV%02zu", j + 1), std::move(relations[j]), caps, net);
    instance.simulated.push_back(src.get());
    FUSION_RETURN_IF_ERROR(instance.catalog.Add(std::move(src)));
  }
  instance.query = DmvFigure1Query();
  return instance;
}

}  // namespace fusion
