// E9 — the Section-5 baseline: distributing the join over the union yields
// n^m SPJ subqueries. Measures source-query counts and metered costs with
// and without common-subexpression elimination, against SJA, as n and m
// grow — reproducing the paper's argument for why resolution-based
// mediators handle fusion queries badly.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "optimizer/sja.h"
#include "optimizer/spj_baseline.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

void Run() {
  bench::Banner("E9: join-over-union baseline vs SJA");
  std::printf("%4s %4s %10s | %10s %12s | %10s %12s | %12s\n", "n", "m",
              "subqueries", "noCSE qrys", "noCSE cost", "CSE qrys",
              "CSE cost", "SJA cost");
  for (const size_t m : {2, 3, 4}) {
    for (const size_t n : {2, 3, 4, 6}) {
      SyntheticSpec spec;
      spec.universe_size = 800;
      spec.num_sources = n;
      spec.num_conditions = m;
      spec.coverage = 0.4;
      spec.selectivity_default = 0.1;
      spec.frac_native_semijoin = 1.0;
      spec.seed = 600 + 10 * m + n;
      auto instance = GenerateSynthetic(spec);
      FUSION_CHECK(instance.ok());
      const OracleCostModel model = bench::MakeOracle(*instance);

      const auto no_cse = bench::RunPlan(
          "noCSE", SpjUnionBaseline(model, false), *instance);
      const auto cse =
          bench::RunPlan("CSE", SpjUnionBaseline(model, true), *instance);
      const auto sja = bench::RunPlan("SJA", OptimizeSja(model), *instance);
      FUSION_CHECK(no_cse.ok && cse.ok && sja.ok)
          << no_cse.error << cse.error << sja.error;

      double subqueries = 1;
      for (size_t i = 0; i < m; ++i) subqueries *= static_cast<double>(n);
      std::printf("%4zu %4zu %10.0f | %10zu %12.0f | %10zu %12.0f | %12.0f\n",
                  n, m, subqueries, no_cse.queries, no_cse.actual,
                  cse.queries, cse.actual, sja.actual);
    }
  }
  std::printf(
      "\nShape check (paper, Section 5): without CSE the baseline issues "
      "m·n^m source queries; CSE helps but the exponential subquery count "
      "remains, while SJA needs at most m·n queries.\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
