#include "bench/workload.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/str_util.h"

namespace fusion {
namespace bench {
namespace {

// Salts for per-component seed streams (see MixSeed).
constexpr uint64_t kFederationSalt = 0x01;
constexpr uint64_t kPoolSalt = 0x02;
constexpr uint64_t kTenantSaltBase = 0x1000;

}  // namespace

Result<MacroWorkload> MacroWorkload::Generate(const MacroWorkloadSpec& spec) {
  if (spec.pool_size == 0) {
    return Status::InvalidArgument("macro workload: pool_size must be > 0");
  }
  if (spec.min_conditions_per_query == 0 ||
      spec.min_conditions_per_query > spec.max_conditions_per_query) {
    return Status::InvalidArgument(
        "macro workload: need 1 <= min_conditions_per_query <= "
        "max_conditions_per_query");
  }
  if (spec.max_conditions_per_query > spec.num_conditions) {
    return Status::InvalidArgument(
        StrFormat("macro workload: max_conditions_per_query (%zu) exceeds "
                  "num_conditions (%zu)",
                  spec.max_conditions_per_query, spec.num_conditions));
  }

  MacroWorkload workload;
  workload.spec_ = spec;

  SyntheticSpec synth;
  synth.universe_size = spec.universe_size;
  synth.num_sources = spec.num_sources;
  synth.num_conditions = spec.num_conditions;
  synth.coverage = spec.coverage;
  synth.selectivity_default = spec.selectivity;
  synth.seed = MixSeed(spec.seed, kFederationSalt);
  workload.synth_spec_ = synth;
  FUSION_ASSIGN_OR_RETURN(workload.instance_, GenerateSynthetic(synth));

  // Query pool. Each query selects k distinct flag columns; each selected
  // column contributes either the shared base condition (verbatim across
  // queries — the overlap that makes cross-query caching pay off) or a
  // query-private variant that also constrains the merge attribute.
  Rng rng(MixSeed(spec.seed, kPoolSalt));
  std::set<std::string> seen;
  const int64_t universe = static_cast<int64_t>(spec.universe_size);
  size_t attempts = 0;
  const size_t max_attempts = spec.pool_size * 64;
  while (workload.pool_.size() < spec.pool_size) {
    if (++attempts > max_attempts) {
      return Status::InvalidArgument(
          "macro workload: condition space too small to build a distinct "
          "query pool of the requested size; lower pool_size or raise "
          "num_conditions");
    }
    const size_t k = static_cast<size_t>(
        rng.Uniform(static_cast<int64_t>(spec.min_conditions_per_query),
                    static_cast<int64_t>(spec.max_conditions_per_query)));
    std::vector<size_t> columns(spec.num_conditions);
    for (size_t i = 0; i < columns.size(); ++i) columns[i] = i;
    std::shuffle(columns.begin(), columns.end(), rng.engine());
    columns.resize(k);
    std::sort(columns.begin(), columns.end());

    std::vector<Condition> conditions;
    conditions.reserve(k);
    for (const size_t column : columns) {
      Condition base =
          Condition::Eq(StrFormat("A%zu", column + 1), Value(int64_t{1}));
      if (rng.Bernoulli(spec.condition_overlap)) {
        conditions.push_back(std::move(base));
      } else {
        // Query-private variant: base AND a random merge-attribute cutoff.
        // Distinct cutoffs make distinct canonical texts, so these entries
        // never share source-call cache lines with other queries.
        const int64_t cutoff = rng.Uniform(universe / 4, universe - 1);
        conditions.push_back(Condition::And(
            std::move(base),
            Condition::Compare("M", CompareOp::kLe, Value(cutoff))));
      }
    }
    const FusionQuery query("M", std::move(conditions));
    std::string sql = query.ToSql();
    // Duplicate shapes retry with fresh randomness (attempt-bounded above).
    if (seen.insert(sql).second) {
      workload.pool_.push_back(std::move(sql));
    }
  }

  workload.popularity_ = ZipfSampler(workload.pool_.size(), spec.zipf_theta);
  return workload;
}

Result<SourceCatalog> MacroWorkload::MakeOracleCatalog() const {
  FUSION_ASSIGN_OR_RETURN(SyntheticInstance oracle,
                          GenerateSynthetic(synth_spec_));
  return std::move(oracle.catalog);
}

MacroWorkload::TenantStream::TenantStream(const MacroWorkload* workload,
                                          size_t tenant, size_t num_tenants,
                                          uint64_t seed)
    : workload_(workload), rng_(seed) {
  const size_t pool = workload->pool_.size();
  // Contiguous private slice; empty when there are more tenants than pool
  // entries (those tenants fall back to the shared Zipf draw).
  const size_t tenants = std::max<size_t>(num_tenants, 1);
  const size_t width = pool / tenants;
  slice_begin_ = std::min(tenant * width, pool);
  slice_size_ = width;
  if (slice_begin_ + slice_size_ > pool) {
    slice_size_ = pool - slice_begin_;
  }
}

size_t MacroWorkload::TenantStream::NextIndex() {
  const MacroWorkloadSpec& spec = workload_->spec_;
  if (slice_size_ == 0 || rng_.Bernoulli(spec.shared_fraction)) {
    return workload_->popularity_.Sample(rng_);
  }
  return slice_begin_ +
         static_cast<size_t>(
             rng_.Uniform(0, static_cast<int64_t>(slice_size_) - 1));
}

MacroWorkload::TenantStream MacroWorkload::StreamFor(
    size_t tenant, size_t num_tenants) const {
  return TenantStream(this, tenant, num_tenants,
                      MixSeed(spec_.seed, kTenantSaltBase + tenant));
}

}  // namespace bench
}  // namespace fusion
