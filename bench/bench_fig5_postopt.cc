// Regenerates Figure 5 of the paper: plan P1 (SJA output for a 2-condition,
// 3-source query where c2 is evaluated by sq at R1/R3 and by sjq at R2),
// then the postoptimized variants — loading a tiny R3 (Fig 5(b)),
// difference-pruning the semijoin set (Fig 5(c)), and the combined SJA+
// plan (Fig 5(d)). All four execute to the same answer; costs only improve.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "optimizer/postopt.h"
#include "optimizer/sja.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

/// Three sources; R3 is tiny with a huge per-query overhead so loading it
/// beats querying it twice, matching the Figure 5 narrative.
SyntheticInstance MakeInstance() {
  SyntheticSpec spec;
  spec.universe_size = 600;
  spec.num_sources = 3;
  spec.num_conditions = 2;
  spec.coverage = 0.5;
  spec.zipf_theta = 1.5;  // R3 much smaller than R1
  spec.selectivity = {0.15, 0.3};
  spec.selectivity_jitter = 0.2;
  spec.frac_native_semijoin = 1.0;
  spec.overhead_min = 60;
  spec.overhead_max = 60;
  spec.send_min = 1.0;
  spec.send_max = 1.0;
  spec.recv_min = 1.0;
  spec.recv_max = 1.0;
  spec.width_min = 1.2;
  spec.width_max = 1.2;
  spec.seed = 4;
  auto instance = GenerateSynthetic(spec);
  FUSION_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

void Show(const char* title, const SyntheticInstance& instance,
          const Result<StructuredBuildResult>& built) {
  bench::Banner(title);
  FUSION_CHECK(built.ok()) << built.status().ToString();
  std::printf("%s", built->plan.ToString().c_str());
  const auto report =
      ExecutePlan(built->plan, instance.catalog, instance.query);
  FUSION_CHECK(report.ok()) << report.status().ToString();
  std::printf("cost: estimated %.2f, metered %.2f, answer size %zu\n",
              built->total_cost, report->ledger.total(),
              report->answer.size());
}

void Run() {
  const SyntheticInstance instance = MakeInstance();
  const OracleCostModel model = bench::MakeOracle(instance);

  // P1: condition order [c1, c2]; c2 by semijoin at R2 only (Figure 5(a)).
  ConditionOrderPlan p1 = MakeStructure({0, 1}, 3);
  p1.use_semijoin[1] = {false, true, false};

  Show("Figure 5(a): plan P1", instance,
       BuildStructuredPlan(model, p1, {}, /*use_difference=*/false));
  Show("Figure 5(b): P1 + loading R3 (lq)", instance,
       BuildStructuredPlan(model, p1, {false, false, true},
                           /*use_difference=*/false));
  Show("Figure 5(c): P1 + difference pruning", instance,
       BuildStructuredPlan(model, p1, {}, /*use_difference=*/true));
  Show("Figure 5(d): P1 + both (SJA+ vocabulary)", instance,
       BuildStructuredPlan(model, p1, {false, false, true},
                           /*use_difference=*/true));

  bench::Banner("SJA vs SJA+ on this instance (optimizer-chosen)");
  const bench::RunResult sja =
      bench::RunPlan("SJA", OptimizeSja(model), instance);
  const bench::RunResult plus =
      bench::RunPlan("SJA+", OptimizeSjaPlus(model), instance);
  FUSION_CHECK(sja.ok) << sja.error;
  FUSION_CHECK(plus.ok) << plus.error;
  std::printf("%-6s metered %.2f\n", sja.name.c_str(), sja.actual);
  std::printf("%-6s metered %.2f  (%.1f%% cheaper)\n", plus.name.c_str(),
              plus.actual, 100.0 * (1.0 - plus.actual / sja.actual));
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
