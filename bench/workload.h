#ifndef FUSION_BENCH_WORKLOAD_H_
#define FUSION_BENCH_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "source/catalog.h"
#include "workload/synthetic.h"

namespace fusion {
namespace bench {

/// The multi-tenant macro workload: one synthetic federation plus a pool of
/// distinct fusion queries over it, sampled by tenants with Zipf popularity.
/// Everything is deterministic in `seed` (per-component streams are derived
/// with MixSeed), so any harness run — including the failure streams of
/// FlakySources honoring FUSION_SEED — replays exactly.
struct MacroWorkloadSpec {
  // Federation shape (forwarded to GenerateSynthetic).
  size_t universe_size = 20000;
  size_t num_sources = 8;
  /// Condition-pool dimensionality: the schema carries one flag column per
  /// condition, and every pool query draws its conditions from this pool.
  size_t num_conditions = 6;
  double coverage = 0.25;
  double selectivity = 0.08;

  // Query pool.
  /// Distinct queries in the pool (the Zipf popularity domain).
  size_t pool_size = 64;
  size_t min_conditions_per_query = 1;
  size_t max_conditions_per_query = 3;
  /// Popularity skew across the pool: rank r is drawn ∝ 1/(r+1)^zipf_theta.
  /// 0 = uniform. Realistic serving traffic is heavily skewed (~1.0), which
  /// is what makes the shared result cache earn its keep.
  double zipf_theta = 1.1;
  /// Probability a query's condition slot reuses the pool's shared base
  /// condition for its flag column verbatim (cacheable across queries);
  /// otherwise the slot gets a query-private variant (base AND a random
  /// merge-attribute range) whose canonical text no other query shares.
  double condition_overlap = 0.7;

  // Tenant mix.
  /// Probability a request samples the whole pool Zipf-style (traffic every
  /// tenant shares); otherwise it draws uniformly from the tenant's private
  /// contiguous slice of the pool — per-tenant working sets that only that
  /// tenant keeps warm.
  double shared_fraction = 0.75;

  uint64_t seed = 1;
};

/// A generated macro workload: the live federation, the SQL query pool, and
/// deterministic per-tenant request streams.
class MacroWorkload {
 public:
  static Result<MacroWorkload> Generate(const MacroWorkloadSpec& spec);

  const MacroWorkloadSpec& spec() const { return spec_; }
  const SyntheticInstance& instance() const { return instance_; }
  SourceCatalog& catalog() { return instance_.catalog; }
  const std::vector<std::string>& pool() const { return pool_; }

  /// A second, independently built federation with byte-identical data —
  /// the differential oracle executes against this one so its source calls
  /// never touch the served federation's wrappers.
  Result<SourceCatalog> MakeOracleCatalog() const;

  /// One tenant's deterministic request stream: Zipf over the shared pool
  /// with probability spec.shared_fraction, else uniform over the tenant's
  /// private slice. Streams for the same (workload seed, tenant) replay
  /// identically; streams for distinct tenants are independent.
  class TenantStream {
   public:
    /// Pool index of the next request.
    size_t NextIndex();

   private:
    friend class MacroWorkload;
    TenantStream(const MacroWorkload* workload, size_t tenant,
                 size_t num_tenants, uint64_t seed);

    const MacroWorkload* workload_;
    Rng rng_;
    size_t slice_begin_ = 0;
    size_t slice_size_ = 0;
  };

  /// `tenant` indexes into `num_tenants` equal private slices of the pool.
  TenantStream StreamFor(size_t tenant, size_t num_tenants) const;

 private:
  MacroWorkloadSpec spec_;
  SyntheticSpec synth_spec_;
  SyntheticInstance instance_;
  std::vector<std::string> pool_;
  ZipfSampler popularity_{1, 0.0};
};

}  // namespace bench
}  // namespace fusion

#endif  // FUSION_BENCH_WORKLOAD_H_
