// bench_macro — the macro-benchmark harness: end-to-end serving throughput
// with a built-in differential correctness oracle.
//
// The harness stands up a real QueryService on an ephemeral TCP port (the
// same serving path as fusionqd), generates a multi-tenant workload — Zipf
// query popularity over a pool of fusion queries with configurable
// condition overlap, per-tenant private working sets, and source churn via
// cache invalidation — and drives it with one connected fusion::Client per
// tenant over real sockets for a fixed duration.
//
// Two outputs:
//  - a perf report (QPS, p50/p95/p99 latency, cache hit/containment rates,
//    metered cost, items moved), also written as a schema-versioned
//    BENCH_<date>.json so runs accumulate into a perf trajectory
//    (tools/bench_diff.py compares the two most recent);
//  - a correctness verdict: a configurable sample of served answers is
//    re-executed on a fresh, serial, cache-less Mediator over an identical
//    federation and compared byte-for-byte. Any divergence fails the run —
//    the harness doubles as a load-time differential test.
//
// Deterministic: every random stream derives from one root seed
// (--seed, else FUSION_SEED, else 1); the seed is printed for replay.
//
// Usage:
//   bench_macro [--tenants=N] [--duration=SEC] [--seed=N]
//               [--universe=N] [--sources=N] [--conditions=N] [--pool=N]
//               [--zipf=T] [--overlap=F] [--shared=F] [--churn-every=N]
//               [--oracle-sample=F] [--workers=N] [--max-queue=N]
//               [--shards=K] [--pace=SEC]
//               [--chaos-profile=off|light|heavy] [--out=PATH]
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/workload.h"
#include "cli/client_flags.h"
#include "router/router.h"
#include "router/shard_map.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "mediator/client.h"
#include "mediator/mediator.h"
#include "mediator/service.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "protocol/chaos.h"
#include "relational/columnar.h"
#include "protocol/socket.h"

namespace fusion {
namespace bench {
namespace {

// v2: latency percentiles come from HistogramSnapshot::Quantile (the same
// log-bucket math the STATS exposition serves), and a "tenants" section
// carries the server-side per-tenant SLO view sampled over the wire.
// v3: a "chaos" section records the fault-injection profile the run was
// served under (seeded socket-level drops/torn writes at the service edge)
// plus the recovery counters — client reconnects, idempotent SUBMIT replays
// — and the oracle divergence count under that abuse, which
// tools/bench_diff.py gates at zero.
// v4: a "local_eval" section reports the columnar data plane's share of the
// run — batch-kernel invocations, rows pushed through them, and emulated-
// semijoin probes skipped by the merge-column Bloom pre-filter. The oracle
// divergence gate is unchanged (and bench_diff.py requires it present and
// zero from this schema on): vectorization may move time, never answers.
// v5: --shards=k serves the run through a fusionrd-equivalent router over
// k replica services and adds a "shards" section — per-shard forward/QPS
// split, the warm-hit locality the rendezvous hash delivers (gated >= 0.95
// by bench_diff.py when present), failovers, INVALIDATE fan-outs, and the
// bytes forwarded shard-ward. Single-shard runs keep the serving path of
// v4; the oracle gate is unchanged either way.
constexpr int kBenchSchemaVersion = 5;

struct Args {
  size_t tenants = 4;
  double duration_seconds = 5.0;
  MacroWorkloadSpec workload;
  /// One source invalidation per this many completed requests (0 = off).
  size_t churn_every = 200;
  /// Fraction of served answers re-checked against the oracle.
  double oracle_sample = 0.25;
  int workers = 8;
  int max_queue = 256;
  /// Serving topology: 1 (default) drives one service directly; k > 1
  /// stands up k replica shards behind a query router and drives that.
  size_t shards = 1;
  /// Wall-clock seconds simulated per metered cost unit (0 = off). Makes
  /// the fleet capacity-bound the way real source latency would, so the
  /// --shards scaling curve measures added capacity, not just added RAM.
  double pace_seconds = 0.0;
  /// Named fault-injection profile at the serving edge ("off", "light",
  /// "heavy"); the resolved rates land in `chaos`.
  std::string chaos_profile = "off";
  ChaosPolicy chaos;
  /// Output: a *.json path writes exactly there; a directory writes
  /// BENCH_<date>.json inside it; empty disables the file.
  std::string out = ".";
  bool seed_given = false;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "bench_macro — multi-tenant serving benchmark with differential "
      "oracle\n\n"
      "usage: bench_macro [options]\n\n"
      "  --tenants=N        concurrent tenant clients (default 4)\n"
      "  --duration=SEC     measured serving window (default 5)\n"
      "  --seed=N           root seed (else FUSION_SEED env, else 1)\n"
      "  --universe=N       synthetic universe size (default 20000)\n"
      "  --sources=N        sources in the federation (default 8)\n"
      "  --conditions=N     condition-pool dimensionality (default 6)\n"
      "  --pool=N           distinct queries in the pool (default 64)\n"
      "  --zipf=T           query-popularity skew (default 1.1)\n"
      "  --overlap=F        P(condition shared verbatim across queries)\n"
      "                     (default 0.7)\n"
      "  --shared=F         P(request drawn from the shared pool, not the\n"
      "                     tenant's private slice) (default 0.75)\n"
      "  --churn-every=N    invalidate a random source's cache entries per\n"
      "                     N completed requests; 0 = off (default 200)\n"
      "  --oracle-sample=F  fraction of answers re-checked on a fresh\n"
      "                     serial uncached mediator (default 0.25)\n"
      "  --workers=N        service executor workers per shard (default 8)\n"
      "  --max-queue=N      service admission bound (default 256)\n"
      "  --shards=K         serve through a query router over K replica\n"
      "                     shards (default 1 = direct single service)\n"
      "  --pace=SEC         sleep SEC wall-clock seconds per metered cost\n"
      "                     unit, simulating source network latency so the\n"
      "                     fleet is capacity-bound (default 0 = off)\n"
      "  --chaos-profile=P  seeded fault injection at the serving edge:\n"
      "                     off (default), light (2%% drops, 1%% torn\n"
      "                     writes), heavy (5%% drops, 3%% torn writes);\n"
      "                     the differential oracle still gates at zero\n"
      "                     divergences\n"
      "  --out=PATH         BENCH json: a .json file path, a directory for\n"
      "                     BENCH_<date>.json, or '' to disable\n"
      "                     (default .)\n");
}

bool ParseSize(const std::string& text, size_t* out) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *out = static_cast<size_t>(std::strtoull(text.c_str(), nullptr, 10));
  return true;
}

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::string v;
    if (ParseFlagValue(a, "--tenants", &v)) {
      if (!ParseSize(v, &args.tenants) || args.tenants == 0) {
        return Status::InvalidArgument("--tenants must be a positive count");
      }
      continue;
    }
    if (ParseFlagValue(a, "--duration", &v)) {
      args.duration_seconds = std::atof(v.c_str());
      if (args.duration_seconds <= 0.0) {
        return Status::InvalidArgument("--duration must be > 0");
      }
      continue;
    }
    if (ParseFlagValue(a, "--seed", &v)) {
      size_t seed = 0;
      if (!ParseSize(v, &seed)) {
        return Status::InvalidArgument("--seed must be a number");
      }
      args.workload.seed = seed;
      args.seed_given = true;
      continue;
    }
    if (ParseFlagValue(a, "--universe", &v)) {
      if (!ParseSize(v, &args.workload.universe_size)) {
        return Status::InvalidArgument("--universe must be a count");
      }
      continue;
    }
    if (ParseFlagValue(a, "--sources", &v)) {
      if (!ParseSize(v, &args.workload.num_sources)) {
        return Status::InvalidArgument("--sources must be a count");
      }
      continue;
    }
    if (ParseFlagValue(a, "--conditions", &v)) {
      if (!ParseSize(v, &args.workload.num_conditions)) {
        return Status::InvalidArgument("--conditions must be a count");
      }
      continue;
    }
    if (ParseFlagValue(a, "--pool", &v)) {
      if (!ParseSize(v, &args.workload.pool_size)) {
        return Status::InvalidArgument("--pool must be a count");
      }
      continue;
    }
    if (ParseFlagValue(a, "--zipf", &v)) {
      args.workload.zipf_theta = std::atof(v.c_str());
      continue;
    }
    if (ParseFlagValue(a, "--overlap", &v)) {
      args.workload.condition_overlap = std::atof(v.c_str());
      continue;
    }
    if (ParseFlagValue(a, "--shared", &v)) {
      args.workload.shared_fraction = std::atof(v.c_str());
      continue;
    }
    if (ParseFlagValue(a, "--churn-every", &v)) {
      if (!ParseSize(v, &args.churn_every)) {
        return Status::InvalidArgument("--churn-every must be a count");
      }
      continue;
    }
    if (ParseFlagValue(a, "--oracle-sample", &v)) {
      args.oracle_sample = std::atof(v.c_str());
      if (args.oracle_sample < 0.0 || args.oracle_sample > 1.0) {
        return Status::InvalidArgument("--oracle-sample must be in [0, 1]");
      }
      continue;
    }
    if (ParseFlagValue(a, "--workers", &v)) {
      args.workers = std::atoi(v.c_str());
      if (args.workers < 1) {
        return Status::InvalidArgument("--workers must be >= 1");
      }
      continue;
    }
    if (ParseFlagValue(a, "--max-queue", &v)) {
      args.max_queue = std::atoi(v.c_str());
      if (args.max_queue < 1) {
        return Status::InvalidArgument("--max-queue must be >= 1");
      }
      continue;
    }
    if (ParseFlagValue(a, "--shards", &v)) {
      if (!ParseSize(v, &args.shards) || args.shards == 0 ||
          args.shards > 256) {
        return Status::InvalidArgument("--shards must be in [1, 256]");
      }
      continue;
    }
    if (ParseFlagValue(a, "--pace", &v)) {
      args.pace_seconds = std::atof(v.c_str());
      if (args.pace_seconds < 0.0) {
        return Status::InvalidArgument("--pace must be >= 0");
      }
      continue;
    }
    if (ParseFlagValue(a, "--chaos-profile", &v)) {
      args.chaos_profile = v;
      if (v == "off") {
        args.chaos = ChaosPolicy{};
      } else if (v == "light") {
        args.chaos.drop_rate = 0.02;
        args.chaos.torn_write_rate = 0.01;
      } else if (v == "heavy") {
        args.chaos.drop_rate = 0.05;
        args.chaos.torn_write_rate = 0.03;
      } else {
        return Status::InvalidArgument(
            "--chaos-profile must be off, light, or heavy");
      }
      continue;
    }
    if (ParseFlagValue(a, "--out", &v)) {
      args.out = v;
      continue;
    }
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      args.help = true;
      continue;
    }
    return Status::InvalidArgument(std::string("unknown argument: ") + a);
  }
  if (!args.seed_given) args.workload.seed = GlobalSeed(args.workload.seed);
  // The fault schedule derives from the same root seed as the workload:
  // one --seed replays the queries *and* the faults they absorbed.
  args.chaos.seed = MixSeed(args.workload.seed, 0xC4A05);
  return args;
}

/// What one tenant thread measured. Merged after the join; no cross-thread
/// sharing during the run beyond the churn counter.
struct TenantResult {
  /// Client-observed latency in the same fixed log buckets the service's
  /// SLO registry uses, so the percentiles below and a STATS p99 read off
  /// the wire go through identical Quantile math.
  Histogram latency_ms;
  double max_latency_ms = 0.0;
  size_t ok = 0;
  size_t errors = 0;
  size_t shed = 0;
  size_t incomplete = 0;
  double cost = 0.0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t items_sent = 0;
  size_t items_received = 0;
  /// Oracle samples: (pool index, canonical answer text) per sampled
  /// request. Complete answers only; incomplete ones are a sound subset by
  /// design and are counted, not compared.
  std::vector<std::pair<size_t, std::string>> samples;
  /// Transparent redials this tenant's client performed (chaos recovery).
  size_t reconnects = 0;
  std::string fatal;  // connect failure etc.
};

/// Element-wise sum of every tenant's latency histogram; Quantile on the
/// result is the whole-run percentile.
HistogramSnapshot MergeLatencies(const std::vector<TenantResult>& results) {
  HistogramSnapshot merged;
  merged.buckets.assign(Histogram::kNumBuckets, 0);
  for (const TenantResult& r : results) {
    const HistogramSnapshot s = r.latency_ms.Snapshot();
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      merged.buckets[i] += s.buckets[i];
    }
    merged.count += s.count;
    merged.sum += s.sum;
  }
  return merged;
}

double TenantStat(const StatsExposition& stats, const std::string& name,
                  const std::string& tenant) {
  const StatsSample* sample = stats.Find(name, tenant);
  return sample == nullptr ? 0.0 : sample->value;
}

double TenantQuantile(const StatsExposition& stats, const std::string& tenant,
                      const char* quantile) {
  for (const StatsSample& sample : stats.samples) {
    if (sample.name != "tenant_latency_ms") continue;
    const std::string* t = sample.Label("tenant");
    const std::string* q = sample.Label("quantile");
    if (t != nullptr && *t == tenant && q != nullptr && *q == quantile) {
      return sample.value;
    }
  }
  return 0.0;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

int RunHarness(const Args& args) {
  std::printf("bench_macro: seed %llu (replay: --seed=%llu or "
              "FUSION_SEED=%llu)\n",
              static_cast<unsigned long long>(args.workload.seed),
              static_cast<unsigned long long>(args.workload.seed),
              static_cast<unsigned long long>(args.workload.seed));

  auto workload_or = MacroWorkload::Generate(args.workload);
  if (!workload_or.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload_or.status().ToString().c_str());
    return 2;
  }
  MacroWorkload workload = std::move(workload_or).value();
  std::printf(
      "bench_macro: %zu sources, universe %zu, pool %zu queries, "
      "%zu tenants, %.1fs\n",
      args.workload.num_sources, args.workload.universe_size,
      workload.pool().size(), args.tenants, args.duration_seconds);

  // Source names in index order, for the sharded churn path (INVALIDATE is
  // addressed by name over the wire). Captured before the catalog moves
  // into shard 0's service.
  const std::vector<std::string> source_names = workload.catalog().Names();

  // The serving fleet: --shards=1 (default) is one service with daemon
  // defaults (shared cache, session-learned stats) — the exact
  // configuration fusionqd serves with. --shards=k stands up k replica
  // services (shard 0 over the generated federation, the rest over
  // MakeOracleCatalog() replicas, byte-identical data) behind one
  // fusionrd-equivalent QueryRouter, and the tenants drive the router.
  QueryService::Options service_options;
  service_options.server_name = "bench-macro";
  service_options.workers = args.workers;
  service_options.max_queue = static_cast<size_t>(args.max_queue);
  service_options.client.execution.simulated_seconds_per_cost =
      args.pace_seconds;
  std::vector<std::unique_ptr<QueryService>> services;
  std::vector<TcpListener> shard_listeners;
  std::vector<Shard> shard_specs;
  for (size_t s = 0; s < args.shards; ++s) {
    SourceCatalog catalog;
    if (s == 0) {
      catalog = std::move(workload.catalog());
    } else {
      auto replica = workload.MakeOracleCatalog();
      if (!replica.ok()) {
        std::fprintf(stderr, "shard %zu catalog: %s\n", s,
                     replica.status().ToString().c_str());
        return 1;
      }
      catalog = std::move(replica).value();
    }
    QueryService::Options shard_options = service_options;
    if (args.shards > 1) {
      shard_options.server_name = StrFormat("bench-macro-shard-%zu", s);
    }
    services.push_back(std::make_unique<QueryService>(
        Mediator(std::move(catalog)), shard_options));
    auto listener_or = TcpListener::Bind("127.0.0.1", 0);
    if (!listener_or.ok()) {
      std::fprintf(stderr, "bind: %s\n",
                   listener_or.status().ToString().c_str());
      return 1;
    }
    shard_listeners.push_back(std::move(listener_or).value());
    Shard spec;
    spec.name = StrFormat("shard-%zu", s);
    spec.endpoint =
        "127.0.0.1:" + std::to_string(shard_listeners.back().port());
    shard_specs.push_back(spec);
  }

  std::unique_ptr<QueryRouter> router;
  std::unique_ptr<TcpListener> router_listener;
  std::string endpoint = shard_specs[0].endpoint;
  if (args.shards > 1) {
    auto map = ShardMap::Make(shard_specs);
    if (!map.ok()) {
      std::fprintf(stderr, "shard map: %s\n", map.status().ToString().c_str());
      return 1;
    }
    QueryRouter::Options router_options;
    router_options.server_name = "bench-macro-router";
    router = std::make_unique<QueryRouter>(std::move(map).value(),
                                           router_options);
    auto listener_or = TcpListener::Bind("127.0.0.1", 0);
    if (!listener_or.ok()) {
      std::fprintf(stderr, "router bind: %s\n",
                   listener_or.status().ToString().c_str());
      return 1;
    }
    router_listener =
        std::make_unique<TcpListener>(std::move(listener_or).value());
    endpoint = "127.0.0.1:" + std::to_string(router_listener->port());
    std::printf("bench_macro: %zu shards behind one router\n", args.shards);
  }

  // Chaos at the serving edge: every accepted connection shares one seeded
  // decision stream, exactly as fusionqd's --chaos-* flags wire it. The
  // counter deltas (not absolutes — the registry is process-global) become
  // the JSON's injected-fault tally.
  std::shared_ptr<ChaosDecider> chaos;
  if (args.chaos.enabled()) {
    chaos = std::make_shared<ChaosDecider>(args.chaos);
    std::printf(
        "bench_macro: chaos profile '%s' (drop %.3f, torn %.3f, seed "
        "%llu)\n",
        args.chaos_profile.c_str(), args.chaos.drop_rate,
        args.chaos.torn_write_rate,
        static_cast<unsigned long long>(args.chaos.seed));
  }
  const ChaosCounts chaos_before = GlobalChaosCounts();

  // Chaos applies at the *client-facing* edge only — the router when
  // sharded, the lone service otherwise. Router-to-shard links stay clean,
  // matching the deployment picture where fusionrd and its shards share a
  // rack while clients arrive over the open internet.
  std::mutex connection_mutex;
  std::vector<std::thread> connection_threads;
  std::vector<std::thread> acceptors;
  for (size_t s = 0; s < args.shards; ++s) {
    const bool client_edge = args.shards == 1;
    acceptors.emplace_back([&, s, client_edge] {
      for (;;) {
        Result<MessageSocket> accepted = shard_listeners[s].Accept();
        if (!accepted.ok()) return;  // listener closed: harness shutdown
        if (client_edge && ChaosRefuseAccept(chaos.get())) {
          accepted->Close();
          continue;
        }
        std::shared_ptr<ChaosDecider> edge_chaos =
            client_edge ? chaos : nullptr;
        std::lock_guard<std::mutex> lock(connection_mutex);
        connection_threads.emplace_back(
            [&services, s, edge_chaos,
             socket = std::move(accepted).value()]() mutable {
              services[s]->ServeConnection(
                  ChaosSocket(std::move(socket), edge_chaos));
            });
      }
    });
  }
  if (router != nullptr) {
    acceptors.emplace_back([&] {
      for (;;) {
        Result<MessageSocket> accepted = router_listener->Accept();
        if (!accepted.ok()) return;
        if (ChaosRefuseAccept(chaos.get())) {
          accepted->Close();
          continue;
        }
        std::lock_guard<std::mutex> lock(connection_mutex);
        connection_threads.emplace_back(
            [&router, chaos, socket = std::move(accepted).value()]() mutable {
              router->ServeConnection(ChaosSocket(std::move(socket), chaos));
            });
      }
    });
  }

  // Tenant threads: each drives its deterministic stream through its own
  // connected client until the deadline. The only cross-tenant state is the
  // completed-request counter that schedules churn.
  std::atomic<size_t> completed{0};
  std::atomic<size_t> churn_invalidations{0};
  std::vector<TenantResult> results(args.tenants);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration<double>(args.duration_seconds);
  // STATS sampler: a separate connected client polls the live exposition
  // while the tenants drive load — the mid-run observability surface the
  // trajectory records — then takes one final sample after the deadline so
  // the JSON's per-tenant section reflects the whole run.
  std::atomic<size_t> stats_samples{0};
  std::thread sampler([&] {
    auto client_or = Client::Builder()
                         .To(Client::Target::Remote(endpoint))
                         .ClientId("bench-stats")
                         .Build();
    if (!client_or.ok()) return;
    Client client = std::move(client_or).value();
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const Result<std::string> text = client.Stats();
      if (text.ok() && ParseStatsText(*text).ok()) {
        stats_samples.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::vector<std::thread> tenants;
  tenants.reserve(args.tenants);
  for (size_t t = 0; t < args.tenants; ++t) {
    tenants.emplace_back([&, t] {
      TenantResult& result = results[t];
      Client::Builder builder;
      builder.To(Client::Target::Remote(endpoint))
          .ClientId(StrFormat("tenant-%zu", t));
      if (args.chaos.enabled()) {
        // Under injected faults the default redial ladder is too short for
        // unlucky streaks; errors here would read as serving bugs.
        RetryPolicy reconnect;
        reconnect.max_attempts = 12;
        reconnect.initial_backoff_seconds = 0.002;
        reconnect.max_backoff_seconds = 0.05;
        builder.Reconnect(reconnect);
      }
      auto client_or = builder.Build();
      if (!client_or.ok()) {
        result.fatal = client_or.status().ToString();
        return;
      }
      Client client = std::move(client_or).value();
      MacroWorkload::TenantStream stream =
          workload.StreamFor(t, args.tenants);
      Rng oracle_rng(MixSeed(args.workload.seed, 0x2000 + t));
      while (std::chrono::steady_clock::now() < deadline) {
        const size_t index = stream.NextIndex();
        const auto t0 = std::chrono::steady_clock::now();
        const Result<ClientAnswer> answer =
            client.QuerySql(workload.pool()[index]);
        const auto t1 = std::chrono::steady_clock::now();
        if (!answer.ok()) {
          if (answer.status().code() == StatusCode::kUnavailable) {
            ++result.shed;  // admission control; back off briefly
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          } else {
            ++result.errors;
          }
          continue;
        }
        ++result.ok;
        const double latency_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        result.latency_ms.Observe(latency_ms);
        if (latency_ms > result.max_latency_ms) {
          result.max_latency_ms = latency_ms;
        }
        result.cost += answer->cost;
        result.cache_hits += answer->cache_hits;
        result.cache_misses += answer->cache_misses;
        result.items_sent += answer->items_sent;
        result.items_received += answer->items_received;
        if (!answer->complete) ++result.incomplete;
        if (oracle_rng.Bernoulli(args.oracle_sample) && answer->complete) {
          result.samples.emplace_back(index, answer->items.ToString());
        }
        const size_t done =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (args.churn_every > 0 && done % args.churn_every == 0) {
          // Deterministic churn schedule: the Nth invalidation always hits
          // the same source for a given seed.
          const size_t source =
              MixSeed(args.workload.seed, 0x3000 + done) %
              args.workload.num_sources;
          if (router != nullptr) {
            // Sharded coherence path: the INVALIDATE verb over this
            // tenant's own connection; the router fans it out to every
            // shard. `done` is unique per churn event, so the version
            // stamps are monotonic and replays idempotent.
            if (client
                    .InvalidateSource(source_names[source],
                                      static_cast<uint64_t>(done))
                    .ok()) {
              churn_invalidations.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            services[0]->session().InvalidateSource(source);
            churn_invalidations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      result.reconnects = client.reconnects();
    });
  }
  for (std::thread& tenant : tenants) tenant.join();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  sampler.join();
  // One more STATS after every tenant finished: the server-side SLO view
  // of the complete run, recorded in the trajectory JSON next to the
  // client-observed numbers. Collected per shard over direct connections —
  // with one shard this is exactly the old single-service sample; with k,
  // the per-tenant counters are summed across the fleet below.
  std::vector<StatsExposition> shard_stats;
  for (size_t s = 0; s < args.shards; ++s) {
    auto stats_client =
        Client::Builder()
            .To(Client::Target::Remote(shard_specs[s].endpoint))
            .ClientId(StrFormat("bench-stats-final-%zu", s))
            .Build();
    if (!stats_client.ok()) continue;
    const Result<std::string> text = stats_client->Stats();
    if (!text.ok()) continue;
    auto parsed = ParseStatsText(*text);
    if (parsed.ok()) shard_stats.push_back(std::move(parsed).value());
  }
  const QueryRouter::Counters router_counters =
      router != nullptr ? router->counters() : QueryRouter::Counters{};
  // shutdown(2), not just close: closing an fd from another thread does not
  // wake a blocked accept() on Linux; shutting the listener down does.
  // Client-facing edge first, then the router's pooled upstream links (so
  // the shard serve loops see EOF), then the shard listeners.
  if (router_listener != nullptr) {
    ::shutdown(router_listener->fd(), SHUT_RDWR);
    router_listener->Close();
  }
  for (TcpListener& listener : shard_listeners) {
    ::shutdown(listener.fd(), SHUT_RDWR);
    listener.Close();
  }
  for (std::thread& acceptor : acceptors) acceptor.join();
  if (router != nullptr) router->Shutdown();
  {
    std::lock_guard<std::mutex> lock(connection_mutex);
    for (std::thread& connection : connection_threads) connection.join();
  }
  const ChaosCounts chaos_after = GlobalChaosCounts();
  const uint64_t chaos_drops = chaos_after.drops - chaos_before.drops;
  const uint64_t chaos_torn =
      chaos_after.torn_writes - chaos_before.torn_writes;
  const uint64_t chaos_refusals =
      chaos_after.refusals - chaos_before.refusals;

  for (size_t t = 0; t < results.size(); ++t) {
    if (!results[t].fatal.empty()) {
      std::fprintf(stderr, "tenant-%zu: %s\n", t, results[t].fatal.c_str());
      return 1;
    }
  }

  // Merge.
  TenantResult total;
  double max_latency = 0.0;
  for (const TenantResult& r : results) {
    total.ok += r.ok;
    total.errors += r.errors;
    total.shed += r.shed;
    total.incomplete += r.incomplete;
    total.cost += r.cost;
    total.cache_hits += r.cache_hits;
    total.cache_misses += r.cache_misses;
    total.items_sent += r.items_sent;
    total.items_received += r.items_received;
    total.reconnects += r.reconnects;
    if (r.max_latency_ms > max_latency) max_latency = r.max_latency_ms;
  }
  if (total.ok == 0) {
    std::fprintf(stderr, "bench_macro: no queries completed\n");
    return 1;
  }
  const HistogramSnapshot latency = MergeLatencies(results);
  const double qps = static_cast<double>(total.ok) / elapsed;
  const double p50 = latency.Quantile(0.50);
  const double p95 = latency.Quantile(0.95);
  const double p99 = latency.Quantile(0.99);
  const double mean = latency.mean();
  // Cache counters summed over the fleet (one term when --shards=1).
  SourceCallCache::Stats cache{};
  size_t idempotent_replays = 0;
  for (const auto& service : services) {
    const SourceCallCache::Stats shard_cache =
        service->session().cache().StatsSnapshot();
    cache.hits += shard_cache.hits;
    cache.containment_hits += shard_cache.containment_hits;
    cache.misses += shard_cache.misses;
    cache.invalidations += shard_cache.invalidations;
    idempotent_replays += service->idempotent_replays();
  }
  const double lookups =
      static_cast<double>(cache.hits + cache.containment_hits + cache.misses);
  const double hit_rate =
      lookups > 0 ? static_cast<double>(cache.hits) / lookups : 0.0;
  const double containment_rate =
      lookups > 0 ? static_cast<double>(cache.containment_hits) / lookups
                  : 0.0;

  std::printf(
      "bench_macro: %zu queries in %.2fs — %.1f QPS; latency ms "
      "p50 %.3f p95 %.3f p99 %.3f mean %.3f max %.3f\n",
      total.ok, elapsed, qps, p50, p95, p99, mean, max_latency);
  std::printf(
      "bench_macro: cache hit rate %.3f, containment rate %.3f "
      "(%zu hits, %zu containment, %zu misses, %zu invalidations); "
      "%zu churn events\n",
      hit_rate, containment_rate, cache.hits, cache.containment_hits,
      cache.misses, cache.invalidations, churn_invalidations.load());
  std::printf(
      "bench_macro: metered cost %.1f (%.3f/query); items moved: "
      "%zu sent, %zu received; %zu shed, %zu errors, %zu incomplete\n",
      total.cost, total.cost / static_cast<double>(total.ok),
      total.items_sent, total.items_received, total.shed, total.errors,
      total.incomplete);
  if (args.chaos.enabled()) {
    std::printf(
        "bench_macro: chaos: %llu drops, %llu torn writes, %llu refusals "
        "injected; %zu client reconnects, %zu idempotent replays\n",
        static_cast<unsigned long long>(chaos_drops),
        static_cast<unsigned long long>(chaos_torn),
        static_cast<unsigned long long>(chaos_refusals), total.reconnects,
        idempotent_replays);
  }
  if (router != nullptr) {
    const double locality =
        router_counters.warm_forwards > 0
            ? static_cast<double>(router_counters.warm_hits) /
                  static_cast<double>(router_counters.warm_forwards)
            : 1.0;
    std::printf("bench_macro: shards:");
    for (size_t s = 0; s < args.shards; ++s) {
      std::printf(" %s=%zu", shard_specs[s].name.c_str(),
                  router_counters.per_shard_forwards[s]);
    }
    std::printf(
        " forwards; warm locality %.3f (%zu/%zu), %zu failovers, "
        "%zu invalidate fan-outs, %llu bytes forwarded\n",
        locality, router_counters.warm_hits, router_counters.warm_forwards,
        router_counters.failovers, router_counters.invalidate_fanouts,
        static_cast<unsigned long long>(router_counters.forward_bytes));
  }

  // ---- Server-side SLO view ---------------------------------------------
  // The final STATS expositions are the fleet's own account of the run.
  // Per-tenant counters sum exactly across shards (each request was served
  // by exactly one); latency quantiles do not, so the fleet view takes the
  // per-shard max — a conservative upper bound, and the exact value when
  // --shards=1. The summed metered cost must agree with what the clients
  // summed — two independent paths to the same number, so a mismatch means
  // the SLO accounting dropped or double-counted requests.
  const bool have_server_stats = shard_stats.size() == args.shards;
  const auto sum_stat = [&shard_stats](const std::string& name,
                                       const std::string& tenant) {
    double total_value = 0.0;
    for (const StatsExposition& stats : shard_stats) {
      total_value += TenantStat(stats, name, tenant);
    }
    return total_value;
  };
  const auto max_quantile = [&shard_stats](const std::string& tenant,
                                           const char* quantile) {
    double max_value = 0.0;
    for (const StatsExposition& stats : shard_stats) {
      max_value = std::max(max_value, TenantQuantile(stats, tenant, quantile));
    }
    return max_value;
  };
  double server_cost = 0.0;
  if (have_server_stats) {
    for (size_t t = 0; t < args.tenants; ++t) {
      const std::string tenant = StrFormat("tenant-%zu", t);
      server_cost += sum_stat("tenant_metered_cost_total", tenant);
      std::printf(
          "bench_macro: %s: %.0f req, %.0f shed, p99 %.2f ms, "
          "cost %.1f (server view)\n",
          tenant.c_str(), sum_stat("tenant_requests_total", tenant),
          sum_stat("tenant_shed_total", tenant),
          max_quantile(tenant, "0.99"),
          sum_stat("tenant_metered_cost_total", tenant));
    }
    const double drift =
        total.cost > 0 ? (server_cost - total.cost) / total.cost : 0.0;
    std::printf(
        "bench_macro: stats: %zu mid-run samples; server metered cost %.1f "
        "vs client %.1f (drift %+.2f%%)\n",
        stats_samples.load(), server_cost, total.cost, 100.0 * drift);
  } else {
    std::printf("bench_macro: stats: %zu mid-run samples; final STATS "
                "incomplete (%zu of %zu shards answered)\n",
                stats_samples.load(), shard_stats.size(), args.shards);
  }

  // ---- Differential oracle ----------------------------------------------
  // Re-execute every *distinct* sampled pool query on a fresh, serial,
  // cache-less Mediator over an identical federation, then hold every
  // sampled served answer to that reference byte-for-byte. Distinct-query
  // dedup keeps the oracle cost bounded by the pool size while still
  // crediting every sampled request to the verdict.
  size_t sampled = 0;
  for (const TenantResult& r : results) sampled += r.samples.size();
  size_t divergences = 0;
  size_t distinct = 0;
  if (sampled > 0) {
    auto oracle_catalog = workload.MakeOracleCatalog();
    if (!oracle_catalog.ok()) {
      std::fprintf(stderr, "oracle catalog: %s\n",
                   oracle_catalog.status().ToString().c_str());
      return 1;
    }
    Mediator oracle(std::move(oracle_catalog).value());
    const MediatorOptions serial;  // sequential, uncached, fresh statistics
    std::map<size_t, std::string> reference;
    for (const TenantResult& r : results) {
      for (const auto& [index, answer] : r.samples) {
        auto it = reference.find(index);
        if (it == reference.end()) {
          Result<QueryAnswer> truth =
              oracle.AnswerSql(workload.pool()[index], serial);
          if (!truth.ok()) {
            std::fprintf(stderr, "oracle: %s\n",
                         truth.status().ToString().c_str());
            return 1;
          }
          it = reference.emplace(index, truth->items.ToString()).first;
          ++distinct;
        }
        if (answer != it->second) {
          if (divergences < 5) {
            std::fprintf(stderr,
                         "DIVERGENCE pool[%zu]:\n  sql:    %s\n"
                         "  served: %s\n  oracle: %s\n",
                         index, workload.pool()[index].c_str(),
                         answer.c_str(), it->second.c_str());
          }
          ++divergences;
        }
      }
    }
  }
  std::printf(
      "bench_macro: oracle: %zu divergences (%zu answers sampled, "
      "%zu distinct queries re-executed serially)\n",
      divergences, sampled, distinct);

  // ---- BENCH_<date>.json -------------------------------------------------
  if (!args.out.empty()) {
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char day[16], stamp[32];
    std::strftime(day, sizeof(day), "%Y-%m-%d", &utc);
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    std::string path = args.out;
    const bool is_file = path.size() > 5 &&
                         path.compare(path.size() - 5, 5, ".json") == 0;
    if (!is_file) {
      if (!path.empty() && path.back() != '/') path += '/';
      path += StrFormat("BENCH_%s.json", day);
    }
    std::string json = StrFormat(
        "{\n"
        "  \"schema_version\": %d,\n"
        "  \"bench\": \"bench_macro\",\n"
        "  \"date\": \"%s\",\n"
        "  \"seed\": %llu,\n"
        "  \"config\": {\n"
        "    \"tenants\": %zu,\n"
        "    \"duration_seconds\": %g,\n"
        "    \"universe\": %zu,\n"
        "    \"sources\": %zu,\n"
        "    \"conditions\": %zu,\n"
        "    \"pool\": %zu,\n"
        "    \"zipf_theta\": %g,\n"
        "    \"condition_overlap\": %g,\n"
        "    \"shared_fraction\": %g,\n"
        "    \"churn_every\": %zu,\n"
        "    \"oracle_sample\": %g,\n"
        "    \"workers\": %d,\n"
        "    \"max_queue\": %d,\n"
        "    \"shards\": %zu,\n"
        "    \"pace_seconds\": %g,\n"
        "    \"chaos_profile\": \"%s\"\n"
        "  },\n",
        kBenchSchemaVersion, stamp,
        static_cast<unsigned long long>(args.workload.seed), args.tenants,
        args.duration_seconds, args.workload.universe_size,
        args.workload.num_sources, args.workload.num_conditions,
        workload.pool().size(), args.workload.zipf_theta,
        args.workload.condition_overlap, args.workload.shared_fraction,
        args.churn_every, args.oracle_sample, args.workers, args.max_queue,
        args.shards, args.pace_seconds,
        JsonEscape(args.chaos_profile).c_str());
    json += StrFormat(
        "  \"metrics\": {\n"
        "    \"qps\": %.3f,\n"
        "    \"queries\": %zu,\n"
        "    \"elapsed_seconds\": %.3f,\n"
        "    \"errors\": %zu,\n"
        "    \"shed\": %zu,\n"
        "    \"incomplete\": %zu,\n"
        "    \"latency_ms\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, "
        "\"mean\": %.4f, \"max\": %.4f},\n"
        "    \"cache\": {\"hit_rate\": %.4f, \"containment_rate\": %.4f, "
        "\"hits\": %zu, \"containment_hits\": %zu, \"misses\": %zu, "
        "\"invalidations\": %zu},\n"
        "    \"churn_events\": %zu,\n"
        "    \"metered_cost_total\": %.3f,\n"
        "    \"metered_cost_per_query\": %.5f,\n"
        "    \"items_moved\": {\"sent\": %zu, \"received\": %zu},\n"
        "    \"stats_samples\": %zu\n"
        "  },\n",
        qps, total.ok, elapsed, total.errors, total.shed, total.incomplete,
        p50, p95, p99, mean, max_latency, hit_rate, containment_rate,
        cache.hits, cache.containment_hits, cache.misses,
        cache.invalidations, churn_invalidations.load(), total.cost,
        total.cost / static_cast<double>(total.ok), total.items_sent,
        total.items_received, stats_samples.load());
    // The chaos section pairs the injected-fault tally with the recovery
    // counters and the divergence verdict under that abuse. In a federation
    // of networked sources the failover counter is live too; this harness's
    // in-process sources never fail over, so it reads 0 here.
    json += StrFormat(
        "  \"chaos\": {\n"
        "    \"enabled\": %s,\n"
        "    \"profile\": \"%s\",\n"
        "    \"drop_rate\": %g,\n"
        "    \"torn_write_rate\": %g,\n"
        "    \"seed\": %llu,\n"
        "    \"drops\": %llu,\n"
        "    \"torn_writes\": %llu,\n"
        "    \"refusals\": %llu,\n"
        "    \"client_reconnects\": %zu,\n"
        "    \"service_replays\": %zu,\n"
        "    \"source_failovers\": %llu,\n"
        "    \"divergences\": %zu\n"
        "  },\n",
        args.chaos.enabled() ? "true" : "false",
        JsonEscape(args.chaos_profile).c_str(), args.chaos.drop_rate,
        args.chaos.torn_write_rate,
        static_cast<unsigned long long>(args.chaos.seed),
        static_cast<unsigned long long>(chaos_drops),
        static_cast<unsigned long long>(chaos_torn),
        static_cast<unsigned long long>(chaos_refusals), total.reconnects,
        idempotent_replays,
        static_cast<unsigned long long>(
            MetricsRegistry::Global()
                .counter(metrics::kSourceFailoversTotal)
                .value()),
        divergences);
    // Columnar data-plane counters, process-wide over the whole run (the
    // service and its sources are in-process). batch_evals counts condition
    // batch-kernel invocations; rows is their total input cardinality.
    const ColumnarEvalStats local_eval = GetColumnarEvalStats();
    json += StrFormat(
        "  \"local_eval\": {\n"
        "    \"batch_evals\": %llu,\n"
        "    \"batch_rows_evaluated\": %llu,\n"
        "    \"semijoin_probes_skipped\": %llu\n"
        "  },\n",
        static_cast<unsigned long long>(local_eval.batch_evals),
        static_cast<unsigned long long>(local_eval.rows_evaluated),
        static_cast<unsigned long long>(
            MetricsRegistry::Global()
                .counter(metrics::kSemijoinProbesSkipped)
                .value()));
    // The sharded-fleet section: the router's own account of the run.
    // warm_hit_locality is the property the rendezvous hash exists to
    // deliver — of the forwards whose canonical key was seen before, the
    // fraction served by the same shard as last time (so its plan memo and
    // SourceCallCache were already hot). tools/bench_diff.py gates it.
    if (router != nullptr) {
      const double locality =
          router_counters.warm_forwards > 0
              ? static_cast<double>(router_counters.warm_hits) /
                    static_cast<double>(router_counters.warm_forwards)
              : 1.0;
      json += StrFormat(
          "  \"shards\": {\n"
          "    \"count\": %zu,\n"
          "    \"per_shard\": [",
          args.shards);
      for (size_t s = 0; s < args.shards; ++s) {
        json += StrFormat(
            "%s\n      {\"name\": \"%s\", \"forwards\": %zu, "
            "\"qps\": %.3f}",
            s == 0 ? "" : ",", JsonEscape(shard_specs[s].name).c_str(),
            router_counters.per_shard_forwards[s],
            static_cast<double>(router_counters.per_shard_forwards[s]) /
                elapsed);
      }
      json += StrFormat(
          "\n    ],\n"
          "    \"forwards\": %zu,\n"
          "    \"warm_forwards\": %zu,\n"
          "    \"warm_hits\": %zu,\n"
          "    \"warm_hit_locality\": %.4f,\n"
          "    \"failovers\": %zu,\n"
          "    \"invalidate_fanouts\": %zu,\n"
          "    \"cross_shard_bytes\": %llu\n"
          "  },\n",
          router_counters.forwards, router_counters.warm_forwards,
          router_counters.warm_hits, locality, router_counters.failovers,
          router_counters.invalidate_fanouts,
          static_cast<unsigned long long>(router_counters.forward_bytes));
    }
    // Per-tenant SLO rows from the fleet's own STATS expositions — what
    // tools/bench_diff.py gates per-tenant p99 on. Counters sum across
    // shards; quantiles take the per-shard max (exact when --shards=1);
    // error_rate is recomputed from the summed counters, since rates do
    // not add.
    json += "  \"tenants\": {";
    if (have_server_stats) {
      for (size_t t = 0; t < args.tenants; ++t) {
        const std::string tenant = StrFormat("tenant-%zu", t);
        const double requests = sum_stat("tenant_requests_total", tenant);
        const double tenant_errors = sum_stat("tenant_errors_total", tenant);
        json += StrFormat(
            "%s\n    \"%s\": {\"requests\": %.0f, \"errors\": %.0f, "
            "\"shed\": %.0f, \"degraded\": %.0f, \"error_rate\": %.4f, "
            "\"metered_cost\": %.3f, \"latency_ms\": "
            "{\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f}}",
            t == 0 ? "" : ",", JsonEscape(tenant).c_str(), requests,
            tenant_errors, sum_stat("tenant_shed_total", tenant),
            sum_stat("tenant_degraded_total", tenant),
            requests > 0 ? tenant_errors / requests : 0.0,
            sum_stat("tenant_metered_cost_total", tenant),
            max_quantile(tenant, "0.5"), max_quantile(tenant, "0.95"),
            max_quantile(tenant, "0.99"));
      }
      json += "\n  ";
    }
    json += "},\n";
    json += StrFormat(
        "  \"oracle\": {\"sampled\": %zu, \"distinct\": %zu, "
        "\"divergences\": %zu}\n"
        "}\n",
        sampled, distinct, divergences);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_macro: cannot write %s\n",
                   JsonEscape(path).c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("bench_macro: wrote %s\n", path.c_str());
  }

  if (divergences > 0) {
    std::fprintf(stderr,
                 "bench_macro: FAILED — served answers diverged from the "
                 "serial oracle\n");
    return 1;
  }
  if (total.errors > 0) {
    std::fprintf(stderr, "bench_macro: FAILED — %zu queries errored\n",
                 total.errors);
    return 1;
  }
  return 0;
}

int Run(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (args->help) {
    PrintUsage();
    return 0;
  }
  return RunHarness(*args);
}

}  // namespace
}  // namespace bench
}  // namespace fusion

int main(int argc, char** argv) { return fusion::bench::Run(argc, argv); }
