// E11 — partitioned vs overlapping data (the introduction's contrast): with
// a traditional global partition, fusion never crosses sources and simple
// local evaluation suffices, while the Internet regime (overlapping,
// incomplete sources) is where the paper's machinery earns its keep.
// Also measures the lazy executor's runtime short-circuiting.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "optimizer/filter.h"
#include "optimizer/postopt.h"
#include "optimizer/sja.h"
#include "relational/reference_evaluator.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

SyntheticInstance Make(bool partitioned, double selectivity, uint64_t seed) {
  SyntheticSpec spec;
  spec.universe_size = 2000;
  spec.num_sources = 8;
  spec.num_conditions = 2;
  spec.coverage = 0.3;
  spec.selectivity = {0.05, selectivity};
  spec.partition_entities = partitioned;
  spec.frac_native_semijoin = 1.0;
  spec.seed = seed;
  auto instance = GenerateSynthetic(spec);
  FUSION_CHECK(instance.ok());
  return std::move(instance).value();
}

void RegimeComparison() {
  bench::Banner("E11a: answer composition, partitioned vs overlapping");
  std::printf("%-12s %10s %12s %12s\n", "regime", "answers", "FILTER cost",
              "SJA cost");
  for (const bool partitioned : {true, false}) {
    const SyntheticInstance instance = Make(partitioned, 0.4, 42);
    const OracleCostModel model = bench::MakeOracle(instance);
    const auto filter = bench::RunPlan("F", OptimizeFilter(model), instance);
    const auto sja = bench::RunPlan("SJA", OptimizeSja(model), instance);
    FUSION_CHECK(filter.ok && sja.ok);
    const ItemSet expected = *ReferenceFusionAnswer(
        RelationsOf(instance), "M", instance.query.conditions());
    std::printf("%-12s %10zu %12.0f %12.0f\n",
                partitioned ? "partitioned" : "overlapping", expected.size(),
                filter.actual, sja.actual);
  }
  std::printf(
      "\nShape check: with the same per-tuple selectivities, overlapping "
      "sources fuse far more answers (conditions can be met at different "
      "sites) — the workload a partition-assuming optimizer never sees.\n");
}

void LazyShortCircuit() {
  bench::Banner("E11b: lazy short-circuit execution (runtime adaptivity)");
  std::printf("%10s %12s %12s %10s\n", "sel(c2)", "eager cost", "lazy cost",
              "skipped");
  for (const double sel : {0.0, 0.001, 0.01, 0.1}) {
    const SyntheticInstance instance =
        Make(false, sel, 77 + static_cast<uint64_t>(sel * 1000));
    const OracleCostModel model = bench::MakeOracle(instance);
    const auto sja = OptimizeSjaPlus(model);
    FUSION_CHECK(sja.ok());
    const auto eager =
        ExecutePlan(sja->plan, instance.catalog, instance.query);
    ExecOptions options;
    options.lazy_short_circuit = true;
    const auto lazy =
        ExecutePlan(sja->plan, instance.catalog, instance.query, options);
    FUSION_CHECK(eager.ok() && lazy.ok());
    FUSION_CHECK(eager->answer == lazy->answer);
    std::printf("%10.3f %12.0f %12.0f %10zu\n", sel, eager->ledger.total(),
                lazy->ledger.total(), lazy->skipped_ops);
  }
  std::printf(
      "\nShape check: when intermediate candidate sets run dry the lazy "
      "executor stops issuing queries; at healthy selectivities the two "
      "modes coincide.\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::RegimeComparison();
  fusion::LazyShortCircuit();
  return 0;
}
