// E7 — two-phase processing (Section 1): phase 1 fuses merge-attribute
// values only; phase 2 fetches full records for the (few) matches. The
// alternative — shipping full records throughout query processing — pays
// the record width on every intermediate transfer. Sweeps record width and
// answer-set size.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/logging.h"
#include "mediator/mediator.h"
#include "optimizer/sja.h"
#include "workload/bibliographic.h"

namespace fusion {
namespace {

/// Cost the "one-phase" alternative: the same plan, but every item shipped
/// source -> mediator is a full record (width multiplier applies to all
/// received items in phase 1, and no second phase is needed).
double OnePhaseCost(const CostLedger& ledger,
                    const SyntheticInstance& instance) {
  std::map<std::string, const SimulatedSource*> by_name;
  for (const SimulatedSource* s : instance.simulated) {
    by_name[s->name()] = s;
  }
  double total = 0;
  for (const Charge& c : ledger.charges()) {
    const SimulatedSource* src = by_name.at(c.source);
    const double width = src->network().record_width_factor;
    const double recv = src->network().cost_per_item_received;
    total += c.cost + recv * (width - 1.0) * static_cast<double>(
                                                 c.items_received);
  }
  return total;
}

void Run() {
  bench::Banner("E7: two-phase vs one-phase processing (bibliographic)");
  std::printf("%8s %10s %12s %12s %12s %10s\n", "width", "answers",
              "phase1", "phase1+2", "one-phase", "2ph gain");
  for (const double width : {2.0, 5.0, 10.0, 40.0, 100.0}) {
    BibliographicSpec spec;
    spec.record_width_factor = width;
    spec.num_documents = 4000;
    auto instance = GenerateBibliographic(spec);
    FUSION_CHECK(instance.ok());
    const OracleCostModel model = bench::MakeOracle(*instance);
    const auto sja = OptimizeSja(model);
    FUSION_CHECK(sja.ok());
    const auto report =
        ExecutePlan(sja->plan, instance->catalog, instance->query);
    FUSION_CHECK(report.ok()) << report.status().ToString();

    // Phase 2: fetch full records of matches from every source.
    CostLedger fetch;
    for (size_t j = 0; j < instance->catalog.size(); ++j) {
      const auto records = instance->catalog.source(j).FetchRecords(
          "DOC", report->answer, &fetch);
      FUSION_CHECK(records.ok());
    }
    const double phase1 = report->ledger.total();
    const double two_phase = phase1 + fetch.total();
    const double one_phase = OnePhaseCost(report->ledger, *instance);
    std::printf("%8.0f %10zu %12.0f %12.0f %12.0f %9.2fx\n", width,
                report->answer.size(), phase1, two_phase, one_phase,
                one_phase / two_phase);
  }
  std::printf(
      "\nShape check (paper, Section 1): two-phase wins once records are "
      "wide relative to the answer set — intermediate candidates are never "
      "shipped as full records.\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
