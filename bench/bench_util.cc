#include "bench_util.h"

#include "common/logging.h"

namespace fusion {
namespace bench {

RunResult RunPlan(const std::string& name, const Result<OptimizedPlan>& opt,
                  const SyntheticInstance& instance) {
  RunResult out;
  out.name = name;
  if (!opt.ok()) {
    out.error = opt.status().ToString();
    return out;
  }
  out.estimated = opt->estimated_cost;
  out.queries = opt->plan.num_source_queries();
  const auto report =
      ExecutePlan(opt->plan, instance.catalog, instance.query);
  if (!report.ok()) {
    out.error = report.status().ToString();
    return out;
  }
  out.actual = report->ledger.total();
  out.queries = report->ledger.num_queries();
  out.ok = true;
  return out;
}

OracleCostModel MakeOracle(const SyntheticInstance& instance) {
  auto model = OracleCostModel::Create(instance.simulated, instance.query);
  FUSION_CHECK(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace bench
}  // namespace fusion
