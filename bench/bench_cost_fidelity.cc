// E8 — cost-model fidelity: how well do estimated plan costs track metered
// execution costs, and how much plan quality is lost to estimation error?
// Compares three statistics regimes: oracle (exact sets — estimates are
// exact by construction), oracle-parametric (exact per-source stats +
// independence assumption), and sampling-calibrated (realistic). "Regret"
// is the metered cost of the plan chosen under a regime divided by the
// metered cost of the plan chosen with oracle estimates.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "mediator/mediator.h"
#include "optimizer/sja.h"
#include "stats/calibration.h"
#include "stats/oracle_stats.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

struct RegimeStats {
  double sum_abs_rel_err = 0;
  double sum_regret = 0;
  double worst_regret = 0;
  int count = 0;

  void Add(double estimated, double actual, double oracle_actual) {
    sum_abs_rel_err += std::abs(estimated - actual) / actual;
    const double regret = actual / oracle_actual;
    sum_regret += regret;
    worst_regret = std::max(worst_regret, regret);
    ++count;
  }
};

void Run() {
  bench::Banner("E8: estimated vs metered cost, and plan regret (50 instances)");
  RegimeStats oracle_stats, parametric_stats, calibrated_stats;
  double calibration_overhead_sum = 0;

  for (uint64_t seed = 0; seed < 50; ++seed) {
    SyntheticSpec spec;
    spec.universe_size = 1200;
    spec.num_sources = 6;
    spec.num_conditions = 3;
    spec.coverage = 0.35;
    spec.selectivity_default = 0.1;
    spec.selectivity_jitter = 0.7;
    spec.frac_native_semijoin = 0.7;
    spec.frac_passed_bindings = 0.3;
    spec.seed = 500 + seed;
    auto instance = GenerateSynthetic(spec);
    FUSION_CHECK(instance.ok());

    // Oracle regime (reference).
    const OracleCostModel oracle = bench::MakeOracle(*instance);
    const auto oracle_opt = OptimizeSja(oracle);
    FUSION_CHECK(oracle_opt.ok());
    const auto oracle_rep =
        ExecutePlan(oracle_opt->plan, instance->catalog, instance->query);
    FUSION_CHECK(oracle_rep.ok());
    const double oracle_actual = oracle_rep->ledger.total();
    oracle_stats.Add(oracle_opt->estimated_cost, oracle_actual,
                     oracle_actual);

    // Oracle-parametric regime.
    const auto parametric =
        OracleParametricModel(instance->simulated, instance->query);
    FUSION_CHECK(parametric.ok());
    const auto par_opt = OptimizeSja(*parametric);
    FUSION_CHECK(par_opt.ok());
    const auto par_rep =
        ExecutePlan(par_opt->plan, instance->catalog, instance->query);
    FUSION_CHECK(par_rep.ok());
    parametric_stats.Add(par_opt->estimated_cost, par_rep->ledger.total(),
                         oracle_actual);

    // Calibrated regime.
    CalibrationOptions copt;
    copt.merge_domain_lo = 0;
    copt.merge_domain_hi = static_cast<int64_t>(spec.universe_size) - 1;
    copt.num_range_probes = 4;
    copt.range_fraction = 0.08;
    copt.seed = seed;
    CostLedger probes;
    const auto calibrated =
        CalibrateBySampling(instance->catalog, instance->query, copt, &probes);
    FUSION_CHECK(calibrated.ok()) << calibrated.status().ToString();
    const auto cal_opt = OptimizeSja(*calibrated);
    FUSION_CHECK(cal_opt.ok());
    const auto cal_rep =
        ExecutePlan(cal_opt->plan, instance->catalog, instance->query);
    FUSION_CHECK(cal_rep.ok());
    calibrated_stats.Add(cal_opt->estimated_cost, cal_rep->ledger.total(),
                         oracle_actual);
    calibration_overhead_sum += probes.total() / oracle_actual;
  }

  auto row = [](const char* name, const RegimeStats& s) {
    std::printf("%-18s %14.4f %12.3f %12.3f\n", name,
                s.sum_abs_rel_err / s.count, s.sum_regret / s.count,
                s.worst_regret);
  };
  std::printf("%-18s %14s %12s %12s\n", "statistics", "mean |est-act|/act",
              "mean regret", "worst regret");
  row("oracle", oracle_stats);
  row("oracle-parametric", parametric_stats);
  row("calibrated", calibrated_stats);
  std::printf("\ncalibration probe overhead: %.1f%% of an oracle-plan "
              "execution on average\n",
              100 * calibration_overhead_sum / 50);
  std::printf(
      "\nShape check: oracle error is ~0 (estimates are the metered costs); "
      "independence and sampling add estimation error but plan regret stays "
      "small — the SJA choice is robust to moderate misestimation.\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
