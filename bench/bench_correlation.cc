// E12 — correlated conditions: the paper proves SJA finds the best simple
// plan when conditions are independent (or m = 2), and claims that with
// dependent conditions "the best semijoin-adaptive plan provides an
// excellent heuristic". This bench quantifies that: as cross-condition
// correlation rises, (a) the independence-based estimator's cost error
// grows, but (b) the plan chosen with misestimated statistics stays close
// to the plan chosen with exact (oracle) knowledge.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "optimizer/sja.h"
#include "stats/oracle_stats.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

void Run() {
  bench::Banner("E12: SJA under correlated conditions (n=6, m=3, 20 seeds)");
  std::printf("%8s %18s %14s %14s\n", "corr", "est err (param)",
              "mean regret", "worst regret");
  for (const double corr : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    double err_sum = 0, regret_sum = 0, regret_worst = 1.0;
    constexpr int kSeeds = 20;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      SyntheticSpec spec;
      spec.universe_size = 1500;
      spec.num_sources = 6;
      spec.num_conditions = 3;
      spec.coverage = 0.4;
      spec.selectivity = {0.05, 0.25, 0.35};
      spec.selectivity_jitter = 0.5;
      spec.condition_correlation = corr;
      spec.frac_native_semijoin = 0.8;
      spec.frac_passed_bindings = 0.2;
      spec.seed = 1300 + seed;
      auto instance = GenerateSynthetic(spec);
      FUSION_CHECK(instance.ok());

      // Oracle-chosen plan (exact sets — correlation fully visible).
      const OracleCostModel oracle = bench::MakeOracle(*instance);
      const auto oracle_opt = OptimizeSja(oracle);
      FUSION_CHECK(oracle_opt.ok());
      const auto oracle_rep =
          ExecutePlan(oracle_opt->plan, instance->catalog, instance->query);
      FUSION_CHECK(oracle_rep.ok());

      // Independence-based plan: exact per-source stats, but intermediate
      // sizes multiply as if conditions were independent.
      const auto parametric =
          OracleParametricModel(instance->simulated, instance->query);
      FUSION_CHECK(parametric.ok());
      const auto par_opt = OptimizeSja(*parametric);
      FUSION_CHECK(par_opt.ok());
      const auto par_rep =
          ExecutePlan(par_opt->plan, instance->catalog, instance->query);
      FUSION_CHECK(par_rep.ok());

      err_sum += std::abs(par_opt->estimated_cost - par_rep->ledger.total()) /
                 par_rep->ledger.total();
      const double regret =
          par_rep->ledger.total() / oracle_rep->ledger.total();
      regret_sum += regret;
      regret_worst = std::max(regret_worst, regret);
    }
    std::printf("%8.2f %17.1f%% %14.3f %14.3f\n", corr,
                100 * err_sum / kSeeds, regret_sum / kSeeds, regret_worst);
  }
  std::printf(
      "\nShape check (paper, Section 1 point 3): estimation error grows "
      "with correlation (the independence assumption under-predicts "
      "intermediate sizes), yet the chosen plans' regret stays small — "
      "\"as good a guess as we can make\" holds up.\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
