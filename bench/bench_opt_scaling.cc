// E3 — optimizer running time (google-benchmark): FILTER/SJ/SJA are linear
// in the number of sources n; SJ/SJA are factorial in the number of
// conditions m; the greedy variants stay polynomial in m; SJA+'s
// postoptimization adds only O(mn).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cost/parametric_cost_model.h"
#include "optimizer/filter.h"
#include "optimizer/greedy.h"
#include "optimizer/postopt.h"
#include "optimizer/sj.h"
#include "optimizer/sja.h"

namespace fusion {
namespace {

ParametricCostModel MakeModel(size_t m, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<SourceParams> params;
  params.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    SourceParams p;
    p.capabilities.semijoin = rng.Bernoulli(0.7)
                                  ? SemijoinSupport::kNative
                                  : SemijoinSupport::kPassedBindingsOnly;
    p.network.query_overhead = 1 + rng.NextDouble() * 20;
    p.network.cost_per_item_sent = 0.2 + rng.NextDouble();
    p.network.cost_per_item_received = 0.2 + rng.NextDouble();
    p.cardinality = static_cast<double>(rng.Uniform(100, 5000));
    for (size_t i = 0; i < m; ++i) {
      p.result_size.push_back(p.cardinality *
                              (0.01 + rng.NextDouble() * 0.4));
    }
    params.push_back(std::move(p));
  }
  return ParametricCostModel(std::move(params), 10000);
}

void BM_FilterVsSources(benchmark::State& state) {
  const ParametricCostModel model =
      MakeModel(3, static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimizeFilter(model));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FilterVsSources)->RangeMultiplier(4)->Range(2, 4096)->Complexity(
    benchmark::oN);

void BM_SjaVsSources(benchmark::State& state) {
  const ParametricCostModel model =
      MakeModel(3, static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimizeSja(model));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SjaVsSources)->RangeMultiplier(4)->Range(2, 4096)->Complexity(
    benchmark::oN);

void BM_SjVsSources(benchmark::State& state) {
  const ParametricCostModel model =
      MakeModel(3, static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimizeSj(model));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SjVsSources)->RangeMultiplier(4)->Range(2, 4096)->Complexity(
    benchmark::oN);

void BM_SjaVsConditions(benchmark::State& state) {
  const ParametricCostModel model =
      MakeModel(static_cast<size_t>(state.range(0)), 16, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimizeSja(model));
  }
}
BENCHMARK(BM_SjaVsConditions)->DenseRange(2, 8, 1);

void BM_GreedySjaVsConditions(benchmark::State& state) {
  const ParametricCostModel model =
      MakeModel(static_cast<size_t>(state.range(0)), 16, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OptimizeGreedySja(model, GreedyOrderHeuristic::kByMinCost));
  }
}
BENCHMARK(BM_GreedySjaVsConditions)->DenseRange(2, 12, 2);

void BM_GreedySelectivityVsConditions(benchmark::State& state) {
  const ParametricCostModel model =
      MakeModel(static_cast<size_t>(state.range(0)), 16, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OptimizeGreedySja(model, GreedyOrderHeuristic::kBySelectivity));
  }
}
BENCHMARK(BM_GreedySelectivityVsConditions)->DenseRange(2, 12, 2);

void BM_SjaPlusPostoptOverhead(benchmark::State& state) {
  // Isolates the postoptimization pass: O(mn) on top of a precomputed SJA
  // structure.
  const ParametricCostModel model =
      MakeModel(4, static_cast<size_t>(state.range(0)), 7);
  const auto sja = OptimizeSja(model);
  if (!sja.ok()) {
    state.SkipWithError("sja failed");
    return;
  }
  PostOptOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PostOptimizeStructure(model, sja->structure, options, "SJA"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SjaPlusPostoptOverhead)
    ->RangeMultiplier(4)
    ->Range(2, 1024)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace fusion

BENCHMARK_MAIN();
