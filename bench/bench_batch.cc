// E13 — multi-query batches (extension; Section-5 CSE taken across whole
// queries): an investigation session issues families of fusion queries with
// overlapping conditions. The batch optimizer plans them jointly, reusing
// selections through the runtime source-call cache. Sweeps the batch's
// condition-overlap degree and the batch size.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "exec/source_call_cache.h"
#include "optimizer/batch.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

/// Builds a batch of `k` two-condition queries over an m-flag universe;
/// `pool` controls overlap: conditions are drawn from A1..A<pool>, so a
/// smaller pool means more cross-query sharing.
std::vector<FusionQuery> MakeBatch(size_t k, size_t pool, uint64_t seed) {
  Rng rng(seed);
  std::vector<FusionQuery> out;
  for (size_t q = 0; q < k; ++q) {
    const size_t a = static_cast<size_t>(
        rng.Uniform(1, static_cast<int64_t>(pool)));
    size_t b = a;
    while (b == a) {
      b = static_cast<size_t>(rng.Uniform(1, static_cast<int64_t>(pool)));
    }
    out.push_back(FusionQuery(
        "M", {Condition::Eq(StrFormat("A%zu", a), Value(int64_t{1})),
              Condition::Eq(StrFormat("A%zu", b), Value(int64_t{1}))}));
  }
  return out;
}

void Run() {
  bench::Banner("E13: batch optimization with cross-query selection reuse");
  std::printf("%6s %6s | %14s %14s %8s | %14s %10s\n", "batch", "pool",
              "independent", "batched", "shared", "metered", "hits");
  for (const size_t pool : {3, 6, 12}) {
    for (const size_t k : {2, 4, 8}) {
      SyntheticSpec spec;
      spec.universe_size = 1000;
      spec.num_sources = 5;
      spec.num_conditions = 12;  // flags available; queries use 2 each
      spec.selectivity_default = 0.15;
      spec.seed = 80 + pool + k;
      auto instance = GenerateSynthetic(spec);
      FUSION_CHECK(instance.ok());
      const std::vector<FusionQuery> queries =
          MakeBatch(k, pool, 1000 + pool * 10 + k);

      std::vector<OracleCostModel> models;
      models.reserve(queries.size());
      for (const FusionQuery& q : queries) {
        auto m = OracleCostModel::Create(instance->simulated, q);
        FUSION_CHECK(m.ok());
        models.push_back(std::move(m).value());
      }
      std::vector<const CostModel*> ptrs;
      for (const OracleCostModel& m : models) ptrs.push_back(&m);

      const auto batch = OptimizeBatch(ptrs, queries);
      FUSION_CHECK(batch.ok()) << batch.status().ToString();

      SourceCallCache cache;
      ExecOptions options;
      options.cache = &cache;
      double metered = 0;
      for (size_t idx : batch->order) {
        const auto report = ExecutePlan(batch->plans[idx].plan,
                                        instance->catalog, queries[idx],
                                        options);
        FUSION_CHECK(report.ok());
        metered += report->ledger.total();
      }
      std::printf("%6zu %6zu | %14.0f %14.0f %8zu | %14.0f %10zu\n", k, pool,
                  batch->estimated_independent, batch->estimated_total,
                  batch->shared_selections, metered, cache.hits());
    }
  }
  std::printf(
      "\nShape check: savings grow with batch size and with condition "
      "overlap (small pools); the metered column tracks the batched "
      "estimate because the cache realizes every planned reuse.\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
