// Regenerates Figure 1 of the paper: the three-DMV instance, the fusion
// query over it, and the answer {J55, T21}; then shows the plans every
// optimizer produces for it and their metered execution costs.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "mediator/mediator.h"
#include "optimizer/filter.h"
#include "optimizer/postopt.h"
#include "optimizer/sj.h"
#include "optimizer/sja.h"
#include "workload/dmv.h"

namespace fusion {
namespace {

void Run() {
  auto instance = BuildDmvFigure1();
  FUSION_CHECK(instance.ok()) << instance.status().ToString();

  bench::Banner("Figure 1: DMV example instance");
  for (size_t j = 0; j < instance->simulated.size(); ++j) {
    std::printf("R%zu:\n%s\n", j + 1,
                instance->simulated[j]->relation().ToString().c_str());
  }

  bench::Banner("Fusion query (Section 1)");
  std::printf("%s\n", instance->query.ToSql().c_str());

  const OracleCostModel model = bench::MakeOracle(*instance);

  PlanPrintNames names;
  for (const Condition& c : instance->query.conditions()) {
    names.conditions.push_back(c.ToString());
  }
  for (size_t j = 0; j < instance->catalog.size(); ++j) {
    names.sources.push_back(instance->catalog.source(j).name());
  }

  struct Entry {
    const char* label;
    Result<OptimizedPlan> opt;
  };
  Entry entries[] = {
      {"FILTER", OptimizeFilter(model)},
      {"SJ", OptimizeSj(model)},
      {"SJA", OptimizeSja(model)},
      {"SJA+", OptimizeSjaPlus(model)},
  };

  for (const Entry& e : entries) {
    FUSION_CHECK(e.opt.ok()) << e.opt.status().ToString();
    bench::Banner(std::string("Plan chosen by ") + e.label);
    std::printf("%s", e.opt->plan.ToString(names).c_str());
    const auto report =
        ExecutePlan(e.opt->plan, instance->catalog, instance->query);
    FUSION_CHECK(report.ok()) << report.status().ToString();
    std::printf("answer  : %s\n", report->answer.ToString().c_str());
    std::printf("cost    : estimated %.3f, metered %.3f over %zu queries\n",
                e.opt->estimated_cost, report->ledger.total(),
                report->ledger.num_queries());
    FUSION_CHECK(report->answer.ToString() == "{'J55', 'T21'}")
        << "Figure 1 answer mismatch";
  }
  std::printf("\nPaper check: answer is {J55, T21} for every plan ✓\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
