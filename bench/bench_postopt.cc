// E2 — SJA+ postoptimization ablation: difference pruning and source
// loading, separately and combined, against plain SJA. Sweeps (a) condition
// overlap (how much of the semijoin set is already confirmed — the lever
// behind difference pruning) and (b) the mix of tiny sources (the lever
// behind loading).
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "optimizer/postopt.h"
#include "optimizer/sja.h"

namespace fusion {
namespace {

void Row(const char* label, const SyntheticInstance& instance,
         const OracleCostModel& model) {
  const auto sja_opt = OptimizeSja(model);
  FUSION_CHECK(sja_opt.ok()) << sja_opt.status().ToString();

  auto run_variant = [&](bool diff, bool load, bool order = false) {
    PostOptOptions options;
    options.use_difference = diff;
    options.use_loading = load;
    options.order_semijoins_by_yield = order;
    const auto opt =
        PostOptimizeStructure(model, sja_opt->structure, options, "SJA");
    FUSION_CHECK(opt.ok()) << opt.status().ToString();
    const auto report =
        ExecutePlan(opt->plan, instance.catalog, instance.query);
    FUSION_CHECK(report.ok()) << report.status().ToString();
    return report->ledger.total();
  };

  const double base = run_variant(false, false);
  const double diff_only = run_variant(true, false);
  const double load_only = run_variant(false, true);
  const double both = run_variant(true, true);
  const double ordered = run_variant(true, true, /*order=*/true);
  std::printf("%-28s %10.0f %10.0f %10.0f %10.0f %10.0f %8.1f%%\n", label,
              base, diff_only, load_only, both, ordered,
              100.0 * (1.0 - ordered / base));
}

void Run() {
  bench::Banner("E2: SJA+ ablation (metered cost)");
  std::printf("%-28s %10s %10s %10s %10s %10s %9s\n", "scenario", "SJA",
              "+diff", "+load", "SJA+", "+ordered", "gain");

  // (a) Overlap sweep: higher per-condition selectivity => larger confirmed
  // fraction in each round => more pruning benefit.
  for (const double sel : {0.1, 0.25, 0.4, 0.6}) {
    SyntheticSpec spec;
    spec.universe_size = 2000;
    spec.num_sources = 8;
    spec.num_conditions = 3;
    spec.coverage = 0.5;
    // A selective anchor condition keeps X_1 small enough that SJA picks
    // semijoins for the later rounds; `sel` controls how much of each
    // semijoin set gets confirmed early (the difference-pruning lever).
    spec.selectivity = {0.02, sel, sel};
    spec.selectivity_jitter = 0.3;
    spec.frac_native_semijoin = 1.0;
    spec.overhead_min = 2;
    spec.overhead_max = 5;
    spec.send_min = 1.5;  // shipping semijoin sets dominates
    spec.send_max = 2.5;
    spec.seed = 50 + static_cast<uint64_t>(sel * 100);
    auto instance = GenerateSynthetic(spec);
    FUSION_CHECK(instance.ok());
    const OracleCostModel model = bench::MakeOracle(*instance);
    char label[64];
    std::snprintf(label, sizeof(label), "overlap: selectivity %.2f", sel);
    Row(label, *instance, model);
  }

  // (b) Tiny-source sweep: Zipf-skewed source sizes; the tail sources are
  // small enough that loading them beats repeated queries.
  for (const double theta : {0.0, 1.0, 1.8}) {
    SyntheticSpec spec;
    spec.universe_size = 2000;
    spec.num_sources = 10;
    spec.num_conditions = 4;
    spec.coverage = 0.25;
    spec.selectivity_default = 0.15;
    spec.zipf_theta = theta;
    spec.frac_native_semijoin = 1.0;
    spec.overhead_min = 40;  // high per-query overhead favors loading
    spec.overhead_max = 80;
    spec.width_min = 1.1;    // narrow records make lq cheap
    spec.width_max = 1.5;
    spec.seed = 90 + static_cast<uint64_t>(theta * 10);
    auto instance = GenerateSynthetic(spec);
    FUSION_CHECK(instance.ok());
    const OracleCostModel model = bench::MakeOracle(*instance);
    char label[64];
    std::snprintf(label, sizeof(label), "tiny sources: zipf %.1f", theta);
    Row(label, *instance, model);
  }

  std::printf(
      "\nShape check (paper, Section 4): both techniques only improve the "
      "plan; gains grow with overlap (difference) and with source-size skew "
      "under high query overhead (loading).\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
