// E10 — response time under parallel execution (the future-work direction
// named in the paper's conclusion): compares the total-work-optimal plans
// (FILTER/SJA/SJA+) against the response-time-oriented SJA-RT on both
// objectives, showing (a) the work/latency trade-off — semijoin chains and
// difference pruning serialize — and (b) SJA-RT's optimality gap against the
// RT brute force on small instances.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "exec/executor.h"
#include "mediator/session.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "source/flaky_source.h"
#include "source/simulated_source.h"
#include "workload/dmv.h"
#include "optimizer/brute_force.h"
#include "optimizer/filter.h"
#include "optimizer/postopt.h"
#include "optimizer/sja.h"
#include "optimizer/sja_rt.h"
#include "plan/response_time.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

struct Row {
  double work = 0;
  double rt = 0;
};

Row Score(const Result<OptimizedPlan>& opt, const OracleCostModel& model) {
  FUSION_CHECK(opt.ok()) << opt.status().ToString();
  const auto rt = EstimateResponseTime(opt->plan, model);
  FUSION_CHECK(rt.ok()) << rt.status().ToString();
  return {rt->total_work, rt->response_time};
}

void TradeOffSweep() {
  // Five conditions give the work-optimal SJA a four-link semijoin chain —
  // cheap in total work, long in latency. The RT objective breaks the chain.
  bench::Banner("E10a: total work vs response time by optimizer (n=6, m=5)");
  std::printf("%6s | %10s %10s | %10s %10s | %10s %10s | %10s %10s\n", "seed",
              "FILTER wk", "FILTER rt", "SJA wk", "SJA rt", "SJA+ wk",
              "SJA+ rt", "SJA-RT wk", "SJA-RT rt");
  double sja_rt_sum = 0, rt_rt_sum = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    SyntheticSpec spec;
    spec.universe_size = 1500;
    spec.num_sources = 6;
    spec.num_conditions = 5;
    spec.coverage = 0.4;
    spec.selectivity = {0.03, 0.25, 0.25, 0.25, 0.25};
    spec.selectivity_jitter = 0.6;
    spec.frac_native_semijoin = 0.8;
    spec.frac_passed_bindings = 0.2;
    spec.seed = 700 + seed;
    auto instance = GenerateSynthetic(spec);
    FUSION_CHECK(instance.ok());
    const OracleCostModel model = bench::MakeOracle(*instance);

    const Row filter = Score(OptimizeFilter(model), model);
    const Row sja = Score(OptimizeSja(model), model);
    const Row plus = Score(OptimizeSjaPlus(model), model);
    const Row rt = Score(OptimizeSjaResponseTime(model), model);
    sja_rt_sum += sja.rt;
    rt_rt_sum += rt.rt;
    std::printf(
        "%6zu | %10.0f %10.0f | %10.0f %10.0f | %10.0f %10.0f | %10.0f "
        "%10.0f\n",
        seed, filter.work, filter.rt, sja.work, sja.rt, plus.work, plus.rt,
        rt.work, rt.rt);
  }
  std::printf("\nmean RT: SJA %.0f vs SJA-RT %.0f (%.1f%% lower latency, "
              "paid for with extra total work; SJA+'s pruning chains are the "
              "slowest of all)\n",
              sja_rt_sum / 8, rt_rt_sum / 8,
              100 * (1 - rt_rt_sum / sja_rt_sum));
}

void HeuristicGap() {
  bench::Banner("E10b: SJA-RT heuristic vs RT brute force (n=3, m=3)");
  int exact = 0;
  double worst = 1.0;
  constexpr int kInstances = 40;
  for (uint64_t seed = 0; seed < kInstances; ++seed) {
    SyntheticSpec spec;
    spec.universe_size = 400;
    spec.num_sources = 3;
    spec.num_conditions = 3;
    spec.selectivity_jitter = 0.8;
    spec.frac_native_semijoin = 0.7;
    spec.frac_passed_bindings = 0.3;
    spec.seed = 900 + seed;
    auto instance = GenerateSynthetic(spec);
    FUSION_CHECK(instance.ok());
    const OracleCostModel model = bench::MakeOracle(*instance);
    const auto heuristic = OptimizeSjaResponseTime(model);
    const auto brute = BruteForceSemijoinAdaptive(
        model, 1 << 20, PlanObjective::kResponseTime);
    FUSION_CHECK(heuristic.ok() && brute.ok());
    const double ratio = heuristic->estimated_cost / brute->estimated_cost;
    if (ratio < 1.0 + 1e-9) ++exact;
    worst = std::max(worst, ratio);
  }
  std::printf("optimal on %d/%d instances; worst ratio %.3f\n", exact,
              kInstances, worst);
  std::printf(
      "\nShape check: per-source decisions are NOT independent under the "
      "makespan objective, so SJA-RT is a heuristic — but a tight one.\n");
}

void DifferenceSerialization() {
  bench::Banner("E10c: difference pruning saves work but serializes");
  std::printf("%-10s %12s %12s\n", "plan", "total work", "response time");
  SyntheticSpec spec;
  spec.universe_size = 2000;
  spec.num_sources = 8;
  spec.num_conditions = 2;
  spec.selectivity = {0.02, 0.5};
  spec.frac_native_semijoin = 1.0;
  spec.overhead_min = 3;
  spec.overhead_max = 6;
  spec.send_min = 1.5;
  spec.send_max = 2.5;
  spec.seed = 1234;
  auto instance = GenerateSynthetic(spec);
  FUSION_CHECK(instance.ok());
  const OracleCostModel model = bench::MakeOracle(*instance);
  const auto sja = OptimizeSja(model);
  FUSION_CHECK(sja.ok());
  for (const bool diff : {false, true}) {
    PostOptOptions options;
    options.use_difference = diff;
    options.use_loading = false;
    const auto plan =
        PostOptimizeStructure(model, sja->structure, options, "SJA");
    FUSION_CHECK(plan.ok());
    const auto rt = EstimateResponseTime(plan->plan, model);
    FUSION_CHECK(rt.ok());
    std::printf("%-10s %12.0f %12.0f\n", diff ? "SJA+diff" : "SJA",
                rt->total_work, rt->response_time);
  }
  std::printf(
      "\nShape check: pruned semijoins must run one after another (each "
      "input depends on the previous answer), so the latency rises even as "
      "total work falls — the trade-off the paper's conclusion anticipates.\n");
}

void MeasuredMakespan() {
  // The prior sections score *theoretical* makespans; this one executes the
  // plan on a thread pool with simulated per-cost-unit latencies and checks
  // that the wall clock actually lands on the predicted critical path.
  bench::Banner("E10d: measured wall-clock makespan vs theory (Fig. 1 DMV)");
  auto instance = BuildDmvFigure1();
  FUSION_CHECK(instance.ok());

  // The Figure 1 filter plan: both sources' selections are independent, so
  // theory predicts the makespan collapses to the slower source chain.
  Plan plan;
  std::vector<int> dui, sp;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSelect(1, j));
  const int u2 = plan.EmitUnion(sp, "U2");
  plan.SetResult(plan.EmitIntersect({x1, u2}, "X2"));

  constexpr double kScale = 2e-3;  // seconds of sleep per metered cost unit
  ExecOptions options;
  options.simulated_seconds_per_cost = kScale;

  const auto seq =
      ExecutePlan(plan, instance->catalog, instance->query, options);
  FUSION_CHECK(seq.ok()) << seq.status().ToString();
  const auto theory = ComputeResponseTime(plan, seq->per_op_cost);
  FUSION_CHECK(theory.ok());

  std::printf("%-16s %14s %14s %10s\n", "execution", "cost units", "measured",
              "vs theory");
  std::printf("%-16s %14.1f %14s %10s\n", "theory: work", theory->total_work,
              "-", "-");
  std::printf("%-16s %14.1f %14s %10s\n", "theory: makespan",
              theory->response_time, "-", "-");
  std::printf("%-16s %14.1f %11.3f s %9.2fx\n", "sequential",
              theory->total_work, seq->wall_clock_makespan,
              seq->wall_clock_makespan / (theory->total_work * kScale));
  for (const int parallelism : {2, 4, 8}) {
    options.parallelism = parallelism;
    const auto par =
        ExecutePlan(plan, instance->catalog, instance->query, options);
    FUSION_CHECK(par.ok()) << par.status().ToString();
    FUSION_CHECK(par->answer == seq->answer);
    const double measured_units = par->wall_clock_makespan / kScale;
    const double vs_theory = measured_units / theory->response_time;
    std::printf("%-16s %14.1f %11.3f s %9.2fx\n",
                ("parallel x" + std::to_string(parallelism)).c_str(),
                theory->response_time, par->wall_clock_makespan, vs_theory);
    if (parallelism >= 4) {
      // The acceptance bar: at parallelism >= 4 the measured makespan sits
      // within 20% of the theoretical critical path and strictly below the
      // sequential total cost.
      FUSION_CHECK(vs_theory < 1.20)
          << "measured makespan drifted >20% above theory";
      FUSION_CHECK(measured_units < theory->total_work)
          << "parallel execution failed to beat the sequential total cost";
    }
  }
  std::printf(
      "\nShape check: the executor's measured makespan converges on "
      "ComputeResponseTime's critical path once workers cover the plan's "
      "width — the theoretical objective optimized above is achievable, not "
      "aspirational.\n");

  // One more parallel run, traced: emit a real Chrome trace of the overlap
  // the numbers above claim, and check the span/charge invariant.
  Tracer::Global().Clear();
  Tracer::Global().Enable();
  options.parallelism = 4;
  const auto traced =
      ExecutePlan(plan, instance->catalog, instance->query, options);
  Tracer::Global().Disable();
  FUSION_CHECK(traced.ok()) << traced.status().ToString();
  const std::vector<SpanRecord> spans = Tracer::Global().Drain();
  size_t source_call_spans = 0;
  for (const SpanRecord& s : spans) {
    if (s.category == SpanCategory::kSourceCall) ++source_call_spans;
  }
  FUSION_CHECK(source_call_spans == traced->ledger.num_queries())
      << source_call_spans << " source_call spans vs "
      << traced->ledger.num_queries() << " ledger charges";
  const Status written = WriteChromeTrace(spans, "e10d_trace.json");
  FUSION_CHECK_OK(written);
  std::printf("\ntrace: %zu spans (%zu source calls, 1:1 with the ledger) "
              "-> e10d_trace.json\n%s",
              spans.size(), source_call_spans, FlameSummary(spans).c_str());
}

void DegradedUnderDeadline() {
  // Fault-tolerant execution: a slow source against a hard query deadline.
  // The degraded run must (a) finish within deadline + one in-flight call,
  // and (b) return a *sound* partial answer — a subset of the healthy one —
  // with the excluded sources named in the completeness report.
  bench::Banner("E10e: degraded-mode execution under a query deadline");

  // The deadline sits *below* one slow call: with parallel execution every
  // fast-source call is admitted at t ≈ 0, the slow source's first call is
  // admitted in time (and allowed to overrun — in-flight calls are never
  // interrupted), and its second, serialized call arrives after the
  // deadline and is the one cut off.
  constexpr double kSlowCallSeconds = 0.08;
  constexpr double kDeadlineSeconds = 0.05;

  auto build_catalog = [] {
    const Schema schema({{"L", ValueType::kString},
                         {"V", ValueType::kString}});
    NetworkProfile net;
    net.query_overhead = 10.0;
    SourceCatalog catalog;
    auto add = [&](const char* name, std::vector<std::vector<Value>> rows,
                   double latency) {
      Relation r(schema);
      for (auto& row : rows) FUSION_CHECK(r.Append(std::move(row)).ok());
      auto inner = std::make_unique<SimulatedSource>(name, std::move(r),
                                                     Capabilities{}, net);
      FlakySource::Options slow;
      slow.injected_latency_seconds = latency;
      FUSION_CHECK(
          catalog
              .Add(std::make_unique<FlakySource>(std::move(inner), slow))
              .ok());
    };
    // R1 and R2 answer instantly; R3 needs 80 ms per call and uniquely
    // witnesses 'T21' — exactly what a deadline-bound run must give up.
    add("R1", {{Value("J55"), Value("dui")}}, 0.0);
    add("R2", {{Value("J55"), Value("sp")}, {Value("T21"), Value("dui")}},
        0.0);
    add("R3", {{Value("T21"), Value("sp")}}, kSlowCallSeconds);
    return catalog;
  };

  const FusionQuery query("L", {Condition::Eq("V", Value("dui")),
                                Condition::Eq("V", Value("sp"))});
  Plan plan;
  std::vector<int> dui, sp;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSelect(1, j));
  const int u2 = plan.EmitUnion(sp, "U2");
  plan.SetResult(plan.EmitIntersect({x1, u2}, "X2"));

  const SourceCatalog catalog = build_catalog();
  auto timed_run = [&](const ExecOptions& options) {
    const auto start = std::chrono::steady_clock::now();
    auto report = ExecutePlan(plan, catalog, query, options);
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    return std::make_pair(std::move(report), elapsed);
  };

  std::printf("%-22s %10s %8s %10s %s\n", "run", "wall", "answer",
              "complete", "notes");
  ExecOptions healthy_options;
  healthy_options.parallelism = 4;
  const auto [healthy, healthy_s] = timed_run(healthy_options);
  FUSION_CHECK(healthy.ok()) << healthy.status().ToString();
  std::printf("%-22s %8.3f s %8zu %10s %s\n", "healthy (no deadline)",
              healthy_s, healthy->answer.size(), "yes",
              healthy->answer.ToString().c_str());

  ExecOptions fail_mode = healthy_options;
  fail_mode.deadline_seconds = kDeadlineSeconds;
  const auto [failed, failed_s] = timed_run(fail_mode);
  FUSION_CHECK(!failed.ok() &&
               failed.status().code() == StatusCode::kDeadlineExceeded)
      << "fail-mode run should exceed the deadline";
  std::printf("%-22s %8.3f s %8s %10s %s\n", "deadline, on-fail", failed_s,
              "-", "-", "kDeadlineExceeded (whole query lost)");

  ExecOptions degrade = fail_mode;
  degrade.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto [partial, partial_s] = timed_run(degrade);
  FUSION_CHECK(partial.ok()) << partial.status().ToString();
  std::printf("%-22s %8.3f s %8zu %10s %s\n", "deadline, degrade", partial_s,
              partial->answer.size(),
              partial->completeness.answer_complete ? "yes" : "no",
              partial->answer.ToString().c_str());

  // Acceptance bars.
  FUSION_CHECK(partial_s <= kDeadlineSeconds + kSlowCallSeconds + 0.25)
      << "degraded run overshot deadline + one call: " << partial_s;
  FUSION_CHECK(
      ItemSet::Difference(partial->answer, healthy->answer).empty())
      << "partial answer is not a subset of the healthy answer";
  FUSION_CHECK(!partial->completeness.answer_complete);
  FUSION_CHECK(partial->completeness.sound);
  std::printf("\n%s\n",
              partial->completeness
                  .ToString({"V = 'dui'", "V = 'sp'"}, {"R1", "R2", "R3"})
                  .c_str());
  std::printf(
      "Shape check: the deadline converts a %.0f ms all-or-nothing failure "
      "into a %.0f ms sound partial answer (no false positives — losing a "
      "source can only shrink the per-condition unions), with the excluded "
      "sources reported per condition.\n",
      healthy_s * 1e3, partial_s * 1e3);
}

void RepeatedQueryCache() {
  // Cross-query caching: the same fusion query issued twice through a
  // QuerySession. The second run answers cached calls locally (exact key or
  // containment), and with cache-aware optimization the *plan itself* shifts
  // to anchor on the cached condition — cheaper than replaying the
  // cold-cache plan against a warm cache.
  bench::Banner("E10f: repeated queries under the cross-query result cache");

  const Schema schema({{"L", ValueType::kInt64}, {"V", ValueType::kString}});
  NetworkProfile net;
  net.query_overhead = 10.0;
  net.cost_per_item_sent = 0.001;
  net.cost_per_item_received = 1.0;
  auto build_catalog = [&] {
    SourceCatalog catalog;
    auto add = [&](const char* name,
                   std::vector<std::pair<int64_t, int64_t>> a_ranges,
                   std::vector<std::pair<int64_t, int64_t>> u_ranges) {
      Relation r(schema);
      for (const auto& [lo, hi] : a_ranges)
        for (int64_t i = lo; i < hi; ++i)
          FUSION_CHECK(r.Append({Value(i), Value("a")}).ok());
      for (const auto& [lo, hi] : u_ranges)
        for (int64_t i = lo; i < hi; ++i)
          FUSION_CHECK(r.Append({Value(i), Value("u")}).ok());
      FUSION_CHECK(catalog
                       .Add(std::make_unique<SimulatedSource>(
                           name, std::move(r), Capabilities{}, net))
                       .ok());
    };
    add("R1", {{0, 800}, {2000, 2005}}, {{2800, 3100}});
    add("R2", {{700, 1500}}, {{2000, 2005}, {3100, 3395}});
    return catalog;
  };

  const Condition c_a = Condition::Eq("V", Value("a"));
  const Condition c_u = Condition::Eq("V", Value("u"));
  const FusionQuery warmup("L", {c_a});
  const FusionQuery query("L", {c_a, c_u});

  std::printf("%-28s %12s %8s %8s %10s\n", "run", "metered cost", "hits",
              "derived", "answer");
  ItemSet answers[2];
  double repeat_cost[2];
  for (const bool aware : {false, true}) {
    QuerySession::Options options;
    options.strategy = OptimizerStrategy::kSja;
    options.cache_aware_optimization = aware;
    QuerySession session(Mediator(build_catalog()), options);
    const auto first = session.Answer(warmup);
    FUSION_CHECK(first.ok()) << first.status().ToString();
    const auto second = session.Answer(query);
    FUSION_CHECK(second.ok()) << second.status().ToString();
    answers[aware] = second->items;
    repeat_cost[aware] = second->execution.ledger.total();
    std::printf("%-28s %12.1f %8zu %8zu %10s\n",
                aware ? "repeat, cache-aware plan" : "repeat, oblivious plan",
                repeat_cost[aware], second->execution.cache_hits,
                second->execution.cache_containment_hits,
                answers[aware].ToString().c_str());
  }
  FUSION_CHECK(answers[0] == answers[1])
      << "cache-aware planning changed the answer";
  FUSION_CHECK(repeat_cost[1] < repeat_cost[0])
      << "cache-aware plan failed to beat the oblivious one";
  std::printf(
      "\nShape check: both plans answer identically, but the cache-aware "
      "optimizer re-prices cached calls at zero and anchors the plan on the "
      "already-cached condition — %.0f%% less metered work than replaying "
      "the cold-cache plan against the same warm cache.\n",
      100 * (1 - repeat_cost[1] / repeat_cost[0]));
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::TradeOffSweep();
  fusion::HeuristicGap();
  fusion::DifferenceSerialization();
  fusion::MeasuredMakespan();
  fusion::DegradedUnderDeadline();
  fusion::RepeatedQueryCache();
  return 0;
}
