#ifndef FUSION_BENCH_BENCH_UTIL_H_
#define FUSION_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "cost/oracle_cost_model.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "workload/synthetic.h"

namespace fusion {
namespace bench {

/// One optimizer outcome on one instance: estimated cost, metered execution
/// cost, and query count.
struct RunResult {
  std::string name;
  double estimated = 0.0;
  double actual = 0.0;
  size_t queries = 0;
  bool ok = false;
  std::string error;
};

/// Optimizes with `opt` (already computed) and executes against the
/// instance, metering actual costs.
RunResult RunPlan(const std::string& name, const Result<OptimizedPlan>& opt,
                  const SyntheticInstance& instance);

/// Builds the oracle model for an instance (CHECK-fails on error; bench
/// instances are well-formed by construction).
OracleCostModel MakeOracle(const SyntheticInstance& instance);

/// Prints a header banner for a bench section.
void Banner(const std::string& title);

}  // namespace bench
}  // namespace fusion

#endif  // FUSION_BENCH_BENCH_UTIL_H_
