// Columnar data-plane microbenchmark: the batch evaluator vs the legacy
// row-at-a-time interpreter on wide records, the sorted-run ItemSet kernels
// vs a generic Value-merge reference, and the Bloom semijoin pre-filter.
// Every timed pair is also checked byte-identical — the data plane refactor
// is only allowed to change *where time goes*, never an answer.
//
// Modes:
//   bench_columnar           full-size run, prints timings and speedups
//   bench_columnar --smoke   small sizes, correctness asserts only; prints
//                            "bench_columnar: ok" for the ctest gate
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/item_set.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "exec/executor.h"
#include "query/fusion_query.h"
#include "relational/relation.h"
#include "source/catalog.h"
#include "source/simulated_source.h"

namespace fusion {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// A wide record: merge column M plus 20 payload columns. The row
/// interpreter materializes nothing but pays per-tuple Value dispatch and
/// by-name attribute lookup per atom; the batch path touches only the three
/// columns the condition names.
Schema WideSchema() {
  std::vector<ColumnDef> cols;
  cols.push_back({"M", ValueType::kString});
  for (int i = 0; i < 7; ++i) {
    cols.push_back({StrFormat("i%d", i), ValueType::kInt64});
    cols.push_back({StrFormat("d%d", i), ValueType::kDouble});
  }
  for (int i = 0; i < 6; ++i) {
    cols.push_back({StrFormat("s%d", i), ValueType::kString});
  }
  return Schema(std::move(cols));
}

Relation WideRelation(size_t rows, uint64_t seed) {
  Rng rng(seed);
  const Schema schema = WideSchema();
  Relation rel(schema);
  for (size_t r = 0; r < rows; ++r) {
    Tuple t;
    t.reserve(schema.num_columns());
    t.push_back(Value("m" + std::to_string(rng.Uniform(0, 4095))));
    for (int i = 0; i < 7; ++i) {
      t.push_back(Value(rng.Uniform(0, 999)));
      t.push_back(Value(static_cast<double>(rng.Uniform(0, 9999)) / 10.0));
    }
    for (int i = 0; i < 6; ++i) {
      t.push_back(Value("tag" + std::to_string(rng.Uniform(0, 63))));
    }
    rel.AppendUnchecked(std::move(t));
  }
  return rel;
}

/// Three-atom conjunction that every row must be evaluated against but few
/// rows satisfy (~2%): evaluation cost dominates, result-building cost —
/// identical on both paths — does not.
Condition WideCondition() {
  return Condition::And(
      Condition::And(
          Condition::Compare("i3", CompareOp::kLt, Value(int64_t{40})),
          Condition::Compare("d5", CompareOp::kLe, Value(600.0))),
      Condition::Compare("s2", CompareOp::kNe, Value("tag0")));
}

void BenchLocalEval(size_t rows, int repeats, bool smoke) {
  bench::Banner("columnar: wide-record local eval (SelectItems), row vs batch");
  const Relation rel = WideRelation(rows, /*seed=*/17);
  const Condition cond = WideCondition();
  rel.WarmColumnar();  // exclude the one-time mirror build from the loop

  // One untimed pass per path to fault in code and check answers.
  const auto row_items = rel.SelectItems(cond, "M", EvalPath::kRow);
  const auto col_items = rel.SelectItems(cond, "M", EvalPath::kColumnar);
  FUSION_CHECK(row_items.ok() && col_items.ok());
  FUSION_CHECK(row_items->ToString() == col_items->ToString());

  const auto t_row = std::chrono::steady_clock::now();
  for (int i = 0; i < repeats; ++i) {
    const auto got = rel.SelectItems(cond, "M", EvalPath::kRow);
    FUSION_CHECK(got.ok() && got->size() == row_items->size());
  }
  const double row_ms = MillisSince(t_row);

  const auto t_col = std::chrono::steady_clock::now();
  for (int i = 0; i < repeats; ++i) {
    const auto got = rel.SelectItems(cond, "M", EvalPath::kColumnar);
    FUSION_CHECK(got.ok() && got->size() == row_items->size());
  }
  const double col_ms = MillisSince(t_col);

  const double speedup = col_ms > 0.0 ? row_ms / col_ms : 0.0;
  std::printf(
      "  %zu rows x %d repeats, 3-atom conjunction, %zu matching items\n"
      "  row path      %10.2f ms\n"
      "  columnar path %10.2f ms\n"
      "  speedup       %10.2fx\n",
      rows, repeats, row_items->size(), row_ms, col_ms, speedup);
  if (!smoke) {
    // The refactor's reason to exist; answers were checked identical above.
    FUSION_CHECK(speedup >= 5.0)
        << "columnar local eval below the 5x bar: " << speedup;
  }
}

/// The pre-kernel generic set algebra: merge two sorted-unique Value runs
/// with per-element Value comparisons. Kept here (not in the library) as the
/// reference the typed kernels are measured against.
std::vector<Value> ReferenceUnion(const std::vector<Value>& a,
                                  const std::vector<Value>& b) {
  std::vector<Value> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<Value> ReferenceIntersect(const std::vector<Value>& a,
                                      const std::vector<Value>& b) {
  std::vector<Value> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

void BenchItemSetKernels(size_t pool, int repeats) {
  bench::Banner("columnar: ItemSet set ops, typed kernels vs generic merge");
  // Two int64 pools with ~50% overlap: a = evens in [0, 2*pool),
  // b = multiples of 4 plus odds — overlapping but not nested.
  std::vector<Value> a_vals, b_vals;
  for (size_t i = 0; i < pool; ++i) {
    a_vals.push_back(Value(static_cast<int64_t>(2 * i)));
    b_vals.push_back(Value(static_cast<int64_t>(
        i % 2 == 0 ? 4 * (i / 2) : 2 * i + 1)));
  }
  std::sort(b_vals.begin(), b_vals.end());
  b_vals.erase(std::unique(b_vals.begin(), b_vals.end()), b_vals.end());
  const ItemSet a = ItemSet::FromSortedUnique(a_vals);
  const ItemSet b = ItemSet::FromSortedUnique(b_vals);

  // Correctness against the generic reference.
  FUSION_CHECK(ItemSet::Union(a, b).ToString() ==
               ItemSet::FromSortedUnique(ReferenceUnion(a_vals, b_vals))
                   .ToString());
  FUSION_CHECK(ItemSet::Intersect(a, b).ToString() ==
               ItemSet::FromSortedUnique(ReferenceIntersect(a_vals, b_vals))
                   .ToString());

  const auto t_ref = std::chrono::steady_clock::now();
  size_t sink_ref = 0;
  for (int i = 0; i < repeats; ++i) {
    sink_ref += ReferenceUnion(a_vals, b_vals).size();
    sink_ref += ReferenceIntersect(a_vals, b_vals).size();
  }
  const double ref_ms = MillisSince(t_ref);

  const auto t_kern = std::chrono::steady_clock::now();
  size_t sink_kern = 0;
  for (int i = 0; i < repeats; ++i) {
    sink_kern += ItemSet::Union(a, b).size();
    sink_kern += ItemSet::Intersect(a, b).size();
  }
  const double kern_ms = MillisSince(t_kern);
  FUSION_CHECK(sink_ref == sink_kern);

  std::printf(
      "  %zu-element pools x %d repeats (union + intersect)\n"
      "  generic Value merge %10.2f ms\n"
      "  typed kernels       %10.2f ms\n"
      "  speedup             %10.2fx\n",
      pool, repeats, ref_ms, kern_ms,
      kern_ms > 0.0 ? ref_ms / kern_ms : 0.0);
}

struct BloomInstance {
  SourceCatalog catalog;
  FusionQuery query;
};

/// A native source with `wide_rows` merge values and a passed-bindings-only
/// source holding only the first `narrow_rows` of them: the semijoin against
/// the narrow source must be emulated, and most probes are guaranteed
/// misses a merge-column Bloom filter can prove absent.
BloomInstance MakeBloomInstance(int64_t wide_rows, int64_t narrow_rows) {
  Schema schema({{"M", ValueType::kString}, {"i", ValueType::kInt64}});
  Relation wide(schema), narrow(schema);
  for (int64_t k = 0; k < wide_rows; ++k) {
    FUSION_CHECK(wide.Append({Value("m" + std::to_string(k)), Value(k)}).ok());
  }
  for (int64_t k = 0; k < narrow_rows; ++k) {
    FUSION_CHECK(
        narrow.Append({Value("m" + std::to_string(k)), Value(k)}).ok());
  }
  Capabilities native;
  Capabilities passed_only;
  passed_only.semijoin = SemijoinSupport::kPassedBindingsOnly;
  BloomInstance out;
  FUSION_CHECK(out.catalog
                   .Add(std::make_unique<SimulatedSource>(
                       "wide", std::move(wide), native, NetworkProfile{}))
                   .ok());
  FUSION_CHECK(out.catalog
                   .Add(std::make_unique<SimulatedSource>(
                       "narrow", std::move(narrow), passed_only,
                       NetworkProfile{}))
                   .ok());
  out.query = FusionQuery(
      "M", {Condition::Compare("i", CompareOp::kGe, Value(int64_t{0})),
            Condition::Compare("i", CompareOp::kGe, Value(int64_t{0}))});
  return out;
}

void BenchBloomPrefilter(int64_t wide_rows, int64_t narrow_rows) {
  bench::Banner("columnar: Bloom pre-filter on emulated semijoin probes");
  Plan plan;
  const int x = plan.EmitSelect(0, 0);
  const int s = plan.EmitSemiJoin(1, 1, x);
  plan.SetResult(s);

  const BloomInstance off_inst = MakeBloomInstance(wide_rows, narrow_rows);
  const auto off = ExecutePlan(plan, off_inst.catalog, off_inst.query,
                               ExecOptions{});
  FUSION_CHECK(off.ok());

  const BloomInstance on_inst = MakeBloomInstance(wide_rows, narrow_rows);
  ExecOptions opts;
  opts.bloom_probe_prefilter = true;
  const auto on = ExecutePlan(plan, on_inst.catalog, on_inst.query, opts);
  FUSION_CHECK(on.ok());

  // Bloom filters have no false negatives, so the answer cannot change; it
  // can only skip probes (all of them guaranteed misses).
  FUSION_CHECK(on->answer.ToString() == off->answer.ToString());
  FUSION_CHECK(on->ledger.total() <= off->ledger.total());
  std::printf(
      "  %lld candidate bindings vs a %lld-row source\n"
      "  bloom off: %6zu probes skipped, metered cost %.2f\n"
      "  bloom on:  %6zu probes skipped, metered cost %.2f\n",
      static_cast<long long>(wide_rows), static_cast<long long>(narrow_rows),
      off->semijoin_probes_skipped, off->ledger.total(),
      on->semijoin_probes_skipped, on->ledger.total());
}

void Run(bool smoke) {
  const size_t rows = smoke ? 5000 : 150000;
  const int repeats = smoke ? 2 : 20;
  BenchLocalEval(rows, repeats, smoke);
  BenchItemSetKernels(smoke ? 5000 : 200000, smoke ? 3 : 50);
  BenchBloomPrefilter(smoke ? 300 : 3000, smoke ? 50 : 500);
  if (smoke) std::printf("bench_columnar: ok\n");
}

}  // namespace
}  // namespace fusion

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  fusion::Run(smoke);
  return 0;
}
