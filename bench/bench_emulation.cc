// E6 — semijoin emulation cost: sources that only accept passed bindings
// answer a semijoin of |X| candidates with |X| separate selection probes,
// each paying full query overhead. The bench measures how expensive a
// forced-semijoin plan becomes as the capability mix degrades, and shows
// SJA routing around the emulating sources.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "optimizer/filter.h"
#include "optimizer/sj.h"
#include "optimizer/sja.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

SyntheticInstance MakeInstance(double native_frac, uint64_t seed) {
  SyntheticSpec spec;
  spec.universe_size = 1500;
  spec.num_sources = 8;
  spec.num_conditions = 2;
  spec.coverage = 0.4;
  spec.selectivity = {0.03, 0.3};
  spec.selectivity_jitter = 0.2;
  spec.frac_native_semijoin = native_frac;
  spec.frac_passed_bindings = 1.0 - native_frac;  // everyone can emulate
  spec.seed = seed;
  auto instance = GenerateSynthetic(spec);
  FUSION_CHECK(instance.ok());
  return std::move(instance).value();
}

void Run() {
  bench::Banner("E6: emulated semijoins vs adaptive routing (n=8, m=2)");
  std::printf("%8s %14s %14s %14s %12s %10s\n", "native", "forced-sjq",
              "FILTER", "SJA", "emulations", "SJA class");
  for (const double frac : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    const SyntheticInstance instance =
        MakeInstance(frac, 300 + static_cast<uint64_t>(frac * 100));
    const OracleCostModel model = bench::MakeOracle(instance);

    // Forced uniform semijoin plan for c2 (what a non-adaptive system that
    // insists on semijoins would do).
    ConditionOrderPlan forced = MakeStructure({0, 1}, 8);
    forced.use_semijoin[1].assign(8, true);
    const auto forced_built = BuildStructuredPlan(model, forced, {}, false);
    FUSION_CHECK(forced_built.ok());
    const auto forced_rep =
        ExecutePlan(forced_built->plan, instance.catalog, instance.query);
    FUSION_CHECK(forced_rep.ok()) << forced_rep.status().ToString();

    const auto filter = bench::RunPlan("F", OptimizeFilter(model), instance);
    const auto sja_opt = OptimizeSja(model);
    const auto sja = bench::RunPlan("SJA", sja_opt, instance);
    FUSION_CHECK(filter.ok && sja.ok);
    FUSION_CHECK(sja_opt.ok());

    std::printf("%8.2f %14.0f %14.0f %14.0f %12zu %10s\n", frac,
                forced_rep->ledger.total(), filter.actual, sja.actual,
                forced_rep->emulated_semijoins,
                PlanClassName(sja_opt->plan_class));
  }
  std::printf(
      "\nShape check: the forced-semijoin column explodes as native support "
      "disappears (per-binding probes), while SJA stays at or below "
      "min(FILTER, forced) by choosing sq at emulating sources.\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
