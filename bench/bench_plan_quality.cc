// E1 — plan quality: SJA >= SJ >= FILTER, with adaptivity paying off most
// when sources are heterogeneous. Sweeps the number of sources and the
// fraction of semijoin-capable sources; reports metered execution costs and
// the speedup of each algorithm over FILTER.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "optimizer/filter.h"
#include "optimizer/postopt.h"
#include "optimizer/sj.h"
#include "optimizer/sja.h"

namespace fusion {
namespace {

SyntheticInstance MakeInstance(size_t n, double native_frac, uint64_t seed) {
  SyntheticSpec spec;
  // The realistic large-federation regime the paper motivates: the entity
  // universe grows with the number of sources, each source covers a roughly
  // fixed number of entities, and the anchor condition (think "dui") has a
  // bounded global result — so the candidate set X_1 stays small while the
  // broad conditions' per-source results stay large.
  spec.universe_size = 400 * n;
  spec.num_sources = n;
  spec.num_conditions = 3;
  spec.coverage = std::min(1.0, 1.2 / static_cast<double>(n));
  const double anchor =
      120.0 / static_cast<double>(spec.universe_size);  // ~120 items globally
  spec.selectivity = {anchor, 0.3, 0.45};
  spec.selectivity_jitter = 0.6;
  spec.zipf_theta = 0.4;
  spec.frac_native_semijoin = native_frac;
  spec.frac_passed_bindings = (1.0 - native_frac) * 0.7;
  spec.seed = seed;
  auto instance = GenerateSynthetic(spec);
  FUSION_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

void SweepSources() {
  bench::Banner("E1a: metered cost vs number of sources (60% native sjq)");
  std::printf("%6s %12s %12s %12s %12s %8s %8s\n", "n", "FILTER", "SJ", "SJA",
              "SJA+", "SJ/F", "SJA/F");
  for (const size_t n : {2, 4, 8, 16, 32, 64, 128, 256}) {
    const SyntheticInstance instance = MakeInstance(n, 0.6, 100 + n);
    const OracleCostModel model = bench::MakeOracle(instance);
    const auto filter = bench::RunPlan("F", OptimizeFilter(model), instance);
    const auto sj = bench::RunPlan("SJ", OptimizeSj(model), instance);
    const auto sja = bench::RunPlan("SJA", OptimizeSja(model), instance);
    const auto plus = bench::RunPlan("SJA+", OptimizeSjaPlus(model), instance);
    FUSION_CHECK(filter.ok && sj.ok && sja.ok && plus.ok);
    std::printf("%6zu %12.0f %12.0f %12.0f %12.0f %8.2f %8.2f\n", n,
                filter.actual, sj.actual, sja.actual, plus.actual,
                sj.actual / filter.actual, sja.actual / filter.actual);
  }
}

void SweepHeterogeneity() {
  bench::Banner(
      "E1b: metered cost vs fraction of natively semijoin-capable sources "
      "(n=16)");
  std::printf("%8s %12s %12s %12s %10s %14s\n", "native", "FILTER", "SJ",
              "SJA", "SJA/SJ", "SJA adapts?");
  for (const double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const SyntheticInstance instance =
        MakeInstance(16, frac, 7 + static_cast<uint64_t>(frac * 10));
    const OracleCostModel model = bench::MakeOracle(instance);
    const auto filter = bench::RunPlan("F", OptimizeFilter(model), instance);
    const auto sj = bench::RunPlan("SJ", OptimizeSj(model), instance);
    const auto sja_opt = OptimizeSja(model);
    const auto sja = bench::RunPlan("SJA", sja_opt, instance);
    FUSION_CHECK(filter.ok && sj.ok && sja.ok);
    std::printf("%8.1f %12.0f %12.0f %12.0f %10.3f %14s\n", frac,
                filter.actual, sj.actual, sja.actual, sja.actual / sj.actual,
                sja_opt.ok() && sja_opt->plan_class ==
                                    PlanClass::kSemijoinAdaptive
                    ? "mixed rows"
                    : "uniform");
  }
  std::printf(
      "\nShape check (paper): SJA <= SJ <= FILTER everywhere; the SJA/SJ gap "
      "is widest at intermediate heterogeneity.\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::SweepSources();
  fusion::SweepHeterogeneity();
  return 0;
}
