// E5 — the semijoin/selection crossover: as the first condition's
// selectivity grows, the candidate set X_1 shipped to later sources grows,
// until selection queries beat semijoin queries. Locates the crossover and
// confirms SJA switches exactly where metered costs cross.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "optimizer/sja.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

void Run() {
  bench::Banner(
      "E5: selection-vs-semijoin crossover (n=4, c2 cost by strategy)");
  std::printf("%8s %12s %12s %12s %14s\n", "sel(c1)", "all-sq c2",
              "all-sjq c2", "SJA choice", "SJA class");
  for (const double sel1 :
       {0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7}) {
    SyntheticSpec spec;
    spec.universe_size = 3000;
    spec.num_sources = 4;
    spec.num_conditions = 2;
    spec.coverage = 0.5;
    spec.selectivity = {sel1, 0.25};
    spec.selectivity_jitter = 0.0;
    spec.frac_native_semijoin = 1.0;
    spec.overhead_min = 10;
    spec.overhead_max = 10;
    spec.send_min = 1.0;
    spec.send_max = 1.0;
    spec.recv_min = 1.0;
    spec.recv_max = 1.0;
    spec.seed = 77;
    auto instance = GenerateSynthetic(spec);
    FUSION_CHECK(instance.ok());
    const OracleCostModel model = bench::MakeOracle(*instance);

    // Fixed ordering [c1, c2]; compare the two uniform strategies for c2.
    ConditionOrderPlan all_sq = MakeStructure({0, 1}, 4);
    ConditionOrderPlan all_sjq = MakeStructure({0, 1}, 4);
    all_sjq.use_semijoin[1].assign(4, true);

    const auto sq_built = BuildStructuredPlan(model, all_sq, {}, false);
    const auto sjq_built = BuildStructuredPlan(model, all_sjq, {}, false);
    FUSION_CHECK(sq_built.ok() && sjq_built.ok());
    const auto sq_rep =
        ExecutePlan(sq_built->plan, instance->catalog, instance->query);
    const auto sjq_rep =
        ExecutePlan(sjq_built->plan, instance->catalog, instance->query);
    FUSION_CHECK(sq_rep.ok() && sjq_rep.ok());

    const auto sja = OptimizeSja(model);
    FUSION_CHECK(sja.ok());
    size_t sjq_count = 0;
    for (bool b : sja->structure.use_semijoin[1]) sjq_count += b;
    std::printf("%8.3f %12.0f %12.0f %8zu/4 sjq %14s\n", sel1,
                sq_rep->ledger.total(), sjq_rep->ledger.total(), sjq_count,
                PlanClassName(sja->plan_class));
  }
  std::printf(
      "\nShape check: semijoins win while |X1| is small; past the crossover "
      "SJA reverts to selections (0/4 sjq), tracking the cheaper metered "
      "column throughout.\n");
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
