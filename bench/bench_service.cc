// E14 — the serving layer: many concurrent clients multiplexed onto one
// shared QuerySession through the fusionqd request driver (the same
// FUSIONQ/1 Handle() path every daemon connection runs).
//
// The experiment behind the serving design's headline claim: once any
// client has paid a query's source traffic, every other client asking the
// same (or an overlapping) question rides the shared cache — the second
// client is metered at a few percent of the first, and concurrent
// duplicates collapse into one execution via single-flight.
//
// Sweeps the concurrent-client count and reports, per round:
//   cold      — metered cost of the first (cache-miss) execution
//   warm max  — the most expensive of the k concurrent warm clients
//   ratio     — warm max / cold (the acceptance bound is <= 0.10)
//   combined  — total metered cost across all k clients
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "mediator/service.h"
#include "protocol/client_protocol.h"
#include "workload/dmv.h"

namespace fusion {
namespace {

constexpr char kDuiAndSp[] =
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'";

/// One client exchange over the daemon's wire driver: serialize a SUBMIT
/// (wait=yes), Handle it, parse the RESULT — exactly what a fusionq
/// --connect client costs the service, minus the TCP hop.
ClientResponse SubmitOverWire(QueryService& service,
                              const std::string& client_id,
                              const std::string& sql) {
  ClientRequest request;
  request.kind = ClientRequest::Kind::kSubmit;
  request.client_id = client_id;
  request.sql = sql;
  request.wait = true;
  auto response =
      ParseClientResponse(service.Handle(SerializeClientRequest(request)));
  FUSION_CHECK(response.ok());
  return std::move(response).value();
}

void Run() {
  bench::Banner(
      "E14: concurrent clients on one fusionqd service (shared session)");

  DmvSpec spec;
  spec.num_states = 20;
  spec.num_drivers = 4000;
  spec.violation_weights = {0.2, 6.0, 1.0, 6.0, 2.0};
  spec.seed = 4631;

  std::printf("%8s | %12s %12s %8s | %12s %12s\n", "clients", "cold",
              "warm max", "ratio", "combined", "independent");
  for (const int clients : {1, 2, 4, 8, 16}) {
    // Fresh federation and service per round: each round's cold cost is a
    // genuine cache miss, not the previous round's warm session.
    auto instance = GenerateDmv(spec);
    FUSION_CHECK(instance.ok());
    QueryService::Options options;
    options.workers = 8;
    options.max_queue = 64;
    options.client.statistics = StatisticsMode::kOracle;
    QueryService service(Mediator(std::move(instance->catalog)), options);

    const ClientResponse cold = SubmitOverWire(service, "first", kDuiAndSp);
    FUSION_CHECK(cold.ok);
    FUSION_CHECK(cold.cost > 0.0);

    std::vector<double> costs(static_cast<size_t>(clients), 0.0);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&service, &costs, c] {
        const ClientResponse warm = SubmitOverWire(
            service, "client-" + std::to_string(c), kDuiAndSp);
        FUSION_CHECK(warm.ok);
        costs[static_cast<size_t>(c)] = warm.cost;
      });
    }
    for (auto& t : threads) t.join();

    double warm_max = 0.0, combined = cold.cost;
    for (const double cost : costs) {
      warm_max = std::max(warm_max, cost);
      combined += cost;
    }
    // k independent mediators (no shared session) would each pay cold.
    const double independent = cold.cost * (1 + clients);
    std::printf("%8d | %12.1f %12.1f %7.1f%% | %12.1f %12.1f\n", clients,
                cold.cost, warm_max, 100.0 * warm_max / cold.cost, combined,
                independent);
    FUSION_CHECK(warm_max <= 0.1 * cold.cost);
  }
  std::printf(
      "\nEvery warm client is metered <= 10%% of the cold execution: the\n"
      "service's shared session turns k clients' identical questions into\n"
      "one set of source calls (cache + single-flight), where independent\n"
      "per-client mediators would pay the full cost k+1 times.\n");
}

}  // namespace
}  // namespace fusion

int main() { fusion::Run(); }
