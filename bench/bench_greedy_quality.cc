// E4 — greedy plan quality: across many random instances, how close do the
// O(mn)/O(m²n) greedy variants of [24] come to the exhaustive SJA optimum?
// Reports the distribution of cost ratios (greedy / optimal) under a
// regular cost regime and an adversarial one (wild per-source spreads).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "cost/parametric_cost_model.h"
#include "optimizer/greedy.h"
#include "optimizer/sja.h"

namespace fusion {
namespace {

ParametricCostModel MakeModel(uint64_t seed, bool adversarial) {
  Rng rng(seed);
  const size_t m = 5;
  const size_t n = 6;
  std::vector<SourceParams> params;
  for (size_t j = 0; j < n; ++j) {
    SourceParams p;
    const double r = rng.NextDouble();
    p.capabilities.semijoin = r < 0.6 ? SemijoinSupport::kNative
                              : r < 0.9 ? SemijoinSupport::kPassedBindingsOnly
                                        : SemijoinSupport::kUnsupported;
    if (adversarial) {
      // Orders-of-magnitude spreads defeat simple orderings.
      p.network.query_overhead = std::pow(10.0, rng.NextDouble() * 3);
      p.network.cost_per_item_sent = std::pow(10.0, rng.NextDouble() * 2 - 1);
      p.network.cost_per_item_received =
          std::pow(10.0, rng.NextDouble() * 2 - 1);
    } else {
      p.network.query_overhead = 5 + rng.NextDouble() * 15;
      p.network.cost_per_item_sent = 0.5 + rng.NextDouble();
      p.network.cost_per_item_received = 0.5 + rng.NextDouble();
    }
    p.cardinality = static_cast<double>(rng.Uniform(100, 3000));
    for (size_t i = 0; i < m; ++i) {
      p.result_size.push_back(p.cardinality *
                              (0.01 + rng.NextDouble() * 0.5));
    }
    params.push_back(std::move(p));
  }
  return ParametricCostModel(std::move(params), 5000);
}

struct RatioStats {
  double mean = 0, p50 = 0, p95 = 0, worst = 0;
  double optimal_fraction = 0;  // fraction of instances matching SJA exactly
};

RatioStats Collect(std::vector<double> ratios) {
  std::sort(ratios.begin(), ratios.end());
  RatioStats out;
  double sum = 0;
  size_t optimal = 0;
  for (double r : ratios) {
    sum += r;
    if (r < 1.0 + 1e-9) ++optimal;
  }
  out.mean = sum / ratios.size();
  out.p50 = ratios[ratios.size() / 2];
  out.p95 = ratios[static_cast<size_t>(ratios.size() * 0.95)];
  out.worst = ratios.back();
  out.optimal_fraction = static_cast<double>(optimal) / ratios.size();
  return out;
}

void Sweep(bool adversarial) {
  constexpr int kInstances = 300;
  std::vector<double> sel_ratios, mincost_ratios;
  for (int k = 0; k < kInstances; ++k) {
    const ParametricCostModel model =
        MakeModel(1000 + k, adversarial);
    const auto sja = OptimizeSja(model);
    const auto g_sel =
        OptimizeGreedySja(model, GreedyOrderHeuristic::kBySelectivity);
    const auto g_min =
        OptimizeGreedySja(model, GreedyOrderHeuristic::kByMinCost);
    FUSION_CHECK(sja.ok() && g_sel.ok() && g_min.ok());
    sel_ratios.push_back(g_sel->estimated_cost / sja->estimated_cost);
    mincost_ratios.push_back(g_min->estimated_cost / sja->estimated_cost);
  }
  const RatioStats sel = Collect(std::move(sel_ratios));
  const RatioStats min = Collect(std::move(mincost_ratios));
  std::printf("%-22s %8s %8s %8s %8s %10s\n", "heuristic", "mean", "p50",
              "p95", "worst", "optimal%");
  std::printf("%-22s %8.3f %8.3f %8.3f %8.3f %9.1f%%\n", "greedy-selectivity",
              sel.mean, sel.p50, sel.p95, sel.worst,
              100 * sel.optimal_fraction);
  std::printf("%-22s %8.3f %8.3f %8.3f %8.3f %9.1f%%\n", "greedy-mincost",
              min.mean, min.p50, min.p95, min.worst,
              100 * min.optimal_fraction);
}

}  // namespace
}  // namespace fusion

int main() {
  std::printf("\n=== E4: greedy vs exhaustive SJA (cost ratio, m=5, n=6, "
              "300 instances) ===\n");
  std::printf("\n-- regular cost regime --\n");
  fusion::Sweep(/*adversarial=*/false);
  std::printf("\n-- adversarial cost regime (orders-of-magnitude spreads) "
              "--\n");
  fusion::Sweep(/*adversarial=*/true);
  std::printf(
      "\nShape check (paper/[24]): greedy finds optimal or near-optimal "
      "plans under regular cost models; the adaptive (mincost) greedy "
      "dominates the static ordering.\n");
  return 0;
}
