// Regenerates Figure 2 of the paper: a filter plan, a semijoin plan, and a
// semijoin-adaptive plan for a fusion query with conditions c1..c3 over
// sources R1, R2 — built through the library's structured-plan builder (the
// same machinery the optimizers use), then costed and executed to show they
// all compute the same answer. Also reports where each optimizer lands on
// the same instance.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "optimizer/filter.h"
#include "optimizer/postopt.h"
#include "optimizer/sj.h"
#include "optimizer/sja.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

SyntheticInstance MakeInstance() {
  SyntheticSpec spec;
  spec.universe_size = 1000;
  spec.num_sources = 2;
  spec.num_conditions = 3;
  spec.coverage = 0.6;
  spec.selectivity = {0.5, 0.25, 0.02};
  spec.selectivity_jitter = 0.1;
  spec.frac_native_semijoin = 1.0;
  spec.overhead_min = 10;
  spec.overhead_max = 10;
  spec.send_min = 0.1;
  spec.send_max = 0.1;
  spec.recv_min = 1.0;
  spec.recv_max = 1.0;
  spec.seed = 42;
  auto instance = GenerateSynthetic(spec);
  FUSION_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

void ShowPlan(const char* title, const SyntheticInstance& instance,
              const OracleCostModel& model, const ConditionOrderPlan& s) {
  bench::Banner(title);
  const auto built = BuildStructuredPlan(model, s, {}, false);
  FUSION_CHECK(built.ok()) << built.status().ToString();
  std::printf("%s", built->plan.ToString().c_str());
  const auto report =
      ExecutePlan(built->plan, instance.catalog, instance.query);
  FUSION_CHECK(report.ok()) << report.status().ToString();
  std::printf("cost: %.2f (metered %.2f), answer size %zu\n",
              built->total_cost, report->ledger.total(),
              report->answer.size());
}

void Run() {
  const SyntheticInstance instance = MakeInstance();
  const OracleCostModel model = bench::MakeOracle(instance);

  // Figure 2(a): filter plan — all conditions by selection queries.
  ConditionOrderPlan filter = MakeStructure({0, 1, 2}, 2);
  ShowPlan("Figure 2(a): a filter plan", instance, model, filter);

  // Figure 2(b): semijoin plan — c2 uniformly by semijoin queries.
  ConditionOrderPlan semijoin = MakeStructure({0, 1, 2}, 2);
  semijoin.use_semijoin[1] = {true, true};
  ShowPlan("Figure 2(b): a semijoin plan", instance, model, semijoin);

  // Figure 2(c): semijoin-adaptive plan — c2 by sjq at R1, by sq at R2.
  ConditionOrderPlan adaptive = MakeStructure({0, 1, 2}, 2);
  adaptive.use_semijoin[1] = {true, false};
  ShowPlan("Figure 2(c): a semijoin-adaptive plan", instance, model,
           adaptive);

  bench::Banner("Optimizer choices on the same instance");
  std::printf("%-8s %12s %12s %8s  class\n", "algo", "estimated", "metered",
              "queries");
  const bench::RunResult rows[] = {
      bench::RunPlan("FILTER", OptimizeFilter(model), instance),
      bench::RunPlan("SJ", OptimizeSj(model), instance),
      bench::RunPlan("SJA", OptimizeSja(model), instance),
      bench::RunPlan("SJA+", OptimizeSjaPlus(model), instance),
  };
  for (const bench::RunResult& r : rows) {
    FUSION_CHECK(r.ok) << r.error;
    std::printf("%-8s %12.2f %12.2f %8zu\n", r.name.c_str(), r.estimated,
                r.actual, r.queries);
  }
}

}  // namespace
}  // namespace fusion

int main() {
  fusion::Run();
  return 0;
}
