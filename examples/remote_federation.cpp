// A federation behind the wire: every source sits behind the FUSIONP/1
// wrapper protocol (serialized requests/responses, as a real deployment
// would run over sockets), so the client has no oracle access at all. Its
// session plans from priors, learns statistics from execution feedback, and
// reuses cached answers — the full production configuration behind the one
// fusion::Client surface.
#include <cstdio>
#include <memory>

#include "mediator/client.h"
#include "protocol/remote_source.h"
#include "protocol/source_server.h"
#include "workload/dmv.h"

using namespace fusion;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // "Deploy" 12 state DMVs as protocol servers.
  DmvSpec spec;
  spec.num_states = 12;
  spec.num_drivers = 2500;
  spec.violation_weights = {0.3, 6.0, 1.0, 6.0, 2.0};  // dui rare, sp common
  spec.seed = 99;
  auto instance = GenerateDmv(spec);
  if (!instance.ok()) return Fail(instance.status());

  std::vector<std::shared_ptr<SourceServer>> servers;
  SourceCatalog remote_catalog;
  for (const SimulatedSource* sim : instance->simulated) {
    servers.push_back(std::make_shared<SourceServer>(
        std::make_unique<SimulatedSource>(*sim)));
    auto server = servers.back();
    auto remote = RemoteSource::Connect(
        [server](const std::string& request) {
          return server->Handle(request);
        });
    if (!remote.ok()) return Fail(remote.status());
    if (Status s = remote_catalog.Add(std::move(remote).value()); !s.ok()) {
      return Fail(s);
    }
  }
  std::printf("connected to %zu sources over FUSIONP/1\n\n",
              remote_catalog.size());

  // A client in its default statistics mode: no oracle anywhere — priors,
  // then execution feedback (Builder::Statistics(std::nullopt) is the
  // session-learned default).
  ClientOptions options;
  options.strategy = OptimizerStrategy::kGreedySjaPlus;
  options.default_cardinality = 2000;
  options.default_universe = 3000;
  auto client = Client::Builder()
                    .To(Client::Target::Embedded(std::move(remote_catalog)))
                    .Options(options)
                    .Build();
  if (!client.ok()) return Fail(client.status());

  const char* queries[] = {
      // The investigation escalates; conditions overlap across queries.
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'",
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'reckless'",
      "SELECT u1.L FROM U u1, U u2, U u3 WHERE u1.L = u2.L AND u2.L = u3.L "
      "AND u1.V = 'dui' AND u2.V = 'sp' AND u3.V = 'redlight'",
      // Re-run of the first query: cache should make it nearly free.
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'",
  };

  std::printf("%4s %10s %10s %10s %12s  %s\n", "#", "answers", "queries",
              "cost", "cache hits", "plan class");
  for (size_t i = 0; i < 4; ++i) {
    const auto answer = client->QuerySql(queries[i]);
    if (!answer.ok()) return Fail(answer.status());
    std::printf("%4zu %10zu %10zu %10.0f %12zu  %s\n", i + 1,
                answer->items.size(), answer->source_queries, answer->cost,
                client->session()->cache().hits(),
                PlanClassName(answer->detail->optimized.plan_class));
  }
  std::printf(
      "\nsession learned %zu (source, condition) statistics; query 4 reused "
      "query 1's answers from the cache.\n",
      client->session()->observed_conditions());
  return 0;
}
