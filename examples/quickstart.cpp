// Quickstart: the paper's running example in ~60 lines of API use.
//
// Three state DMVs export overlapping violation records; we ask for drivers
// with both a 'dui' and an 'sp' violation. Everything goes through the one
// client surface of the system — fusion::Client — which optimizes the
// fusion query (SJA+ by default), executes the plan against the sources,
// and reports the answer plus the metered communication cost.
#include <cstdio>
#include <memory>

#include "mediator/client.h"
#include "source/simulated_source.h"

using namespace fusion;

int main() {
  // 1. The common schema every wrapper exports: license, violation, date.
  const Schema schema({{"L", ValueType::kString},
                       {"V", ValueType::kString},
                       {"D", ValueType::kInt64}});

  // 2. Three autonomous sources (Figure 1 of the paper).
  auto make_relation = [&](std::initializer_list<Tuple> rows) {
    Relation r(schema);
    for (const Tuple& t : rows) {
      const Status s = r.Append(t);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return r;
      }
    }
    return r;
  };
  Relation r1 = make_relation({{Value("J55"), Value("dui"), Value(int64_t{1993})},
                               {Value("T21"), Value("sp"), Value(int64_t{1994})},
                               {Value("T80"), Value("dui"), Value(int64_t{1993})}});
  Relation r2 = make_relation({{Value("T21"), Value("dui"), Value(int64_t{1996})},
                               {Value("J55"), Value("sp"), Value(int64_t{1996})},
                               {Value("T11"), Value("sp"), Value(int64_t{1993})}});
  Relation r3 = make_relation({{Value("T21"), Value("sp"), Value(int64_t{1993})},
                               {Value("S07"), Value("sp"), Value(int64_t{1996})},
                               {Value("S07"), Value("sp"), Value(int64_t{1993})}});

  SourceCatalog catalog;
  NetworkProfile net;  // defaults: overhead 10, unit transfer costs
  for (auto& [name, rel] : std::initializer_list<std::pair<const char*, Relation*>>{
           {"R1", &r1}, {"R2", &r2}, {"R3", &r3}}) {
    Status s = catalog.Add(std::make_unique<SimulatedSource>(
        name, std::move(*rel), Capabilities{}, net));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 3. Build the client (simulated sources: oracle statistics) and ask it,
  //    in the paper's SQL form.
  auto client = Client::Builder()
                    .To(Client::Target::Embedded(std::move(catalog)))
                    .Statistics(StatisticsMode::kOracle)
                    .Build();
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    return 1;
  }
  const auto answer = client->QuerySql(
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'");
  if (!answer.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }

  // 4. Results: the fused answer, the plan that produced it, and its cost.
  std::printf("drivers with dui AND sp: %s\n\n",
              answer->items.ToString().c_str());
  std::printf("plan (%s, %s):\n%s\n",
              answer->detail->optimized.algorithm.c_str(),
              PlanClassName(answer->detail->optimized.plan_class),
              answer->detail->optimized.plan.ToString().c_str());
  std::printf("communication cost: %.2f over %zu source queries\n",
              answer->cost, answer->source_queries);
  return 0;
}
