// Two-phase bibliographic search (the introduction's second motivating
// scenario): several overlapping digital libraries index documents; a fusion
// query first identifies matching document ids (phase 1, ids only), then the
// user pages through full records a few at a time (phase 2).
//
// Demonstrates why the two-phase split pays: records are wide, and phase 1
// never ships them.
#include <algorithm>
#include <cstdio>

#include "mediator/client.h"
#include "workload/bibliographic.h"

using namespace fusion;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  BibliographicSpec spec;
  spec.num_libraries = 6;
  spec.num_documents = 6000;
  spec.record_width_factor = 40.0;  // abstracts, author lists, links...
  auto instance = GenerateBibliographic(spec);
  if (!instance.ok()) return Fail(instance.status());

  const FusionQuery query = instance->query;
  std::printf("libraries:");
  for (const SimulatedSource* s : instance->simulated) {
    std::printf(" %s(%zu docs, sjq=%s)", s->name().c_str(),
                s->relation().size(),
                SemijoinSupportName(s->capabilities().semijoin));
  }
  std::printf("\n\nsearch: %s\n\n", query.ToString().c_str());

  auto client = Client::Builder()
                    .To(Client::Target::Embedded(std::move(instance->catalog)))
                    .Statistics(StatisticsMode::kOracle)
                    .Strategy(OptimizerStrategy::kSjaPlus)
                    .Build();
  if (!client.ok()) return Fail(client.status());

  // Phase 1: fuse matching ids across libraries.
  const auto answer = client->Query(query);
  if (!answer.ok()) return Fail(answer.status());
  std::printf("phase 1: %zu matching documents, cost %.0f (%zu queries, "
              "%zu semijoins emulated)\n",
              answer->items.size(), answer->cost, answer->source_queries,
              answer->detail->execution.emulated_semijoins);

  // Phase 2: page through full records, 5 at a time (like a result screen).
  Mediator& mediator = client->session()->mediator();
  const std::vector<Value>& ids = answer->items.values();
  double phase2_cost = 0;
  size_t pages = 0;
  for (size_t offset = 0; offset < ids.size(); offset += 5) {
    ItemSet page(std::vector<Value>(
        ids.begin() + static_cast<long>(offset),
        ids.begin() + static_cast<long>(
                          std::min(offset + 5, ids.size()))));
    CostLedger ledger;
    const auto records = mediator.FetchRecords(query, page, &ledger);
    if (!records.ok()) return Fail(records.status());
    phase2_cost += ledger.total();
    ++pages;
    if (pages == 1) {
      std::printf("\nfirst page of results:\n");
      for (size_t i = 0; i < std::min<size_t>(5, records->size()); ++i) {
        const Tuple& t = records->tuple(i);
        std::printf("  doc %s  %s, %s, %s\n", t[0].ToString().c_str(),
                    t[1].ToString().c_str(), t[2].ToString().c_str(),
                    t[3].ToString().c_str());
      }
    }
  }
  std::printf("\nphase 2: %zu pages fetched, total cost %.0f\n", pages,
              phase2_cost);
  std::printf("total (two-phase): %.0f\n", answer->cost + phase2_cost);

  // Smarter phase 2: phase 1 already revealed which library returned each
  // id, so the mediator can fetch from witnesses only (greedy set cover)
  // instead of broadcasting every page to all libraries.
  CostLedger witness_ledger;
  const auto witness_records = mediator.FetchRecordsFromWitnesses(
      query, answer->detail->execution, &witness_ledger);
  if (!witness_records.ok()) return Fail(witness_records.status());
  std::printf("witness-based phase 2 (all matches in one pass): cost %.0f "
              "for %zu records\n",
              witness_ledger.total(), witness_records->size());
  std::printf(
      "\nA one-phase strategy would have shipped ~%.0fx-wide records for "
      "every intermediate candidate — see bench_two_phase for the sweep.\n",
      spec.record_width_factor);
  return 0;
}
