// Marketplace monitoring without oracle statistics: overlapping vendor
// catalogs list products (skewed coverage, heterogeneous capabilities), and
// the client must *calibrate its cost model by sampling* through the public
// wrapper interface before planning — the realistic deployment mode (cf.
// Zhu & Larson [25], cited by the paper for statistics gathering).
//
// The example finds products that are simultaneously discounted at one
// vendor, highly rated at another, and in stock somewhere, then compares
// the calibrated plan against the oracle plan — switching statistics modes
// per call over one client.
#include <cstdio>

#include "mediator/client.h"
#include "workload/synthetic.h"

using namespace fusion;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // Synthetic marketplace: M = product id; A1 = discounted, A2 = top-rated,
  // A3 = in stock (boolean flags, per-vendor truth).
  SyntheticSpec spec;
  spec.universe_size = 5000;
  spec.num_sources = 7;
  spec.num_conditions = 3;
  spec.coverage = 0.4;
  spec.zipf_theta = 0.8;           // one dominant vendor, a long tail
  spec.selectivity = {0.08, 0.15, 0.6};
  spec.selectivity_jitter = 0.5;
  spec.frac_native_semijoin = 0.6;
  spec.frac_passed_bindings = 0.4;
  spec.seed = 77;
  auto instance = GenerateSynthetic(spec);
  if (!instance.ok()) return Fail(instance.status());

  std::printf("vendors:");
  for (const SimulatedSource* s : instance->simulated) {
    std::printf(" %s(%zu)", s->name().c_str(), s->relation().size());
  }
  std::printf("\nquery: %s\n\n", instance->query.ToString().c_str());

  const FusionQuery query = instance->query;

  // One client; no result cache, so both runs below meter their full plan
  // traffic and the comparison is statistics-mode against statistics-mode.
  ClientOptions options;
  options.strategy = OptimizerStrategy::kSjaPlus;
  options.use_cache = false;
  options.calibration.merge_domain_lo = 0;
  options.calibration.merge_domain_hi =
      static_cast<int64_t>(spec.universe_size) - 1;
  options.calibration.num_range_probes = 5;
  options.calibration.range_fraction = 0.05;
  auto client = Client::Builder()
                    .To(Client::Target::Embedded(std::move(instance->catalog)))
                    .Options(options)
                    .Build();
  if (!client.ok()) return Fail(client.status());

  // Realistic mode: statistics from sampling probes (costs real traffic).
  CallControls calibrated;
  calibrated.statistics = StatisticsMode::kCalibrated;
  const auto real = client->Query(query, calibrated);
  if (!real.ok()) return Fail(real.status());

  // Reference: what we would have done with perfect information.
  CallControls oracle;
  oracle.statistics = StatisticsMode::kOracle;
  const auto ideal = client->Query(query, oracle);
  if (!ideal.ok()) return Fail(ideal.status());

  std::printf("interesting products found: %zu (both modes agree: %s)\n\n",
              real->items.size(),
              real->items == ideal->items ? "yes" : "NO — bug!");
  std::printf("%-12s %14s %14s %14s\n", "statistics", "probe cost",
              "plan cost", "total");
  std::printf("%-12s %14.0f %14.0f %14.0f\n", "calibrated",
              real->calibration_cost, real->cost,
              real->calibration_cost + real->cost);
  std::printf("%-12s %14.0f %14.0f %14.0f\n", "oracle", 0.0, ideal->cost,
              ideal->cost);
  std::printf(
      "\nplan regret from sampled statistics: %.1f%% (probes amortize over "
      "repeated queries against the same vendors)\n",
      100.0 * (real->cost / ideal->cost - 1.0));

  std::printf("\ncalibrated plan:\n%s",
              real->detail->optimized.plan.ToString().c_str());
  return 0;
}
