// A multi-state DMV investigation: 40 autonomous state databases with
// heterogeneous capabilities (some legacy systems cannot answer semijoins),
// Zipf-skewed sizes, and partial cross-state notification — the setting the
// paper's introduction motivates.
//
// The example compares what each optimizer strategy pays for the same
// question ("drivers with both a dui and a speeding violation") using the
// client API's per-call strategy override, prints the winning plan, and then
// runs a second investigation with a date predicate to show condition
// parsing.
#include <cstdio>

#include "mediator/client.h"
#include "workload/dmv.h"

using namespace fusion;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  DmvSpec spec;
  spec.num_states = 40;
  spec.num_drivers = 8000;
  spec.violations_per_driver = 2.5;
  // dui is rare nationwide while speeding is everywhere — the regime where
  // shipping the small dui candidate set as a semijoin beats pulling every
  // state's speeding list.
  spec.violation_kinds = {"dui", "sp", "reckless", "parking", "redlight"};
  spec.violation_weights = {0.1, 6.0, 1.0, 6.0, 2.0};
  spec.frac_native_semijoin = 0.5;   // half the states run modern systems
  spec.frac_passed_bindings = 0.35;  // most of the rest accept bindings
  spec.seed = 2024;
  auto instance = GenerateDmv(spec);
  if (!instance.ok()) return Fail(instance.status());

  std::printf("federation: %zu state DMVs, sizes", instance->catalog.size());
  size_t total = 0;
  for (const SimulatedSource* s : instance->simulated) {
    total += s->relation().size();
  }
  std::printf(" totalling %zu violation records\n\n", total);

  const FusionQuery query = instance->query;
  // One client over the federation. Oracle statistics and no result cache:
  // the strategy comparison below must meter every plan's full traffic, not
  // a warm-cache rerun of the first plan's.
  auto client = Client::Builder()
                    .To(Client::Target::Embedded(std::move(instance->catalog)))
                    .Statistics(StatisticsMode::kOracle)
                    .UseCache(false)
                    .Build();
  if (!client.ok()) return Fail(client.status());

  std::printf("query: %s\n\n", query.ToString().c_str());
  std::printf("%-10s %10s %12s %10s  %s\n", "strategy", "queries", "cost",
              "answers", "plan class");
  ItemSet suspects;
  for (const OptimizerStrategy strategy :
       {OptimizerStrategy::kFilter, OptimizerStrategy::kSj,
        OptimizerStrategy::kSja, OptimizerStrategy::kSjaPlus,
        OptimizerStrategy::kGreedySjaPlus}) {
    CallControls controls;
    controls.strategy = strategy;
    const auto answer = client->Query(query, controls);
    if (!answer.ok()) return Fail(answer.status());
    std::printf("%-10s %10zu %12.0f %10zu  %s\n",
                OptimizerStrategyName(strategy), answer->source_queries,
                answer->cost, answer->items.size(),
                PlanClassName(answer->detail->optimized.plan_class));
    suspects = answer->items;
  }

  std::printf("\nsuspects (both dui and sp on record): %zu drivers\n",
              suspects.size());

  // Refined question with a date range, written as SQL.
  const auto refined = client->QuerySql(
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND u1.V = 'dui' AND u1.D >= 1995 "
      "AND u2.V = 'sp'");
  if (!refined.ok()) return Fail(refined.status());
  std::printf("recent dui (>=1995) and any sp: %zu drivers, cost %.0f\n",
              refined->items.size(), refined->cost);

  // Second phase: pull the full records of the first investigation.
  CostLedger fetch_ledger;
  const auto records =
      client->session()->mediator().FetchRecords(query, suspects,
                                                 &fetch_ledger);
  if (!records.ok()) return Fail(records.status());
  std::printf("\nphase 2: fetched %zu full records for %zu suspects "
              "(cost %.0f)\n",
              records->size(), suspects.size(), fetch_ledger.total());
  return 0;
}
